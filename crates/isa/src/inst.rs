//! Macro-instruction set.
//!
//! Macro-instructions are what programs are written in (via the
//! [`crate::ProgramBuilder`]); the cycle-level core never executes them
//! directly but cracks each one into 1–3 micro-ops (see [`crate::decode`]),
//! mirroring how an x86-64 front end decomposes complex instructions.
//! The *instruction pointer* (RIP in the paper's x86 terminology) of a macro
//! instruction is simply its index in the program's instruction stream.

use crate::{AluOp, ArchReg, Cond, MemRef, MemSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction pointer: the index of a static macro-instruction in the
/// program text.  This is the "RIP" used by MeRLiN's grouping criterion.
pub type Rip = u32;

/// A macro-instruction.
///
/// The set is intentionally compact but covers the idioms the workload
/// kernels need: three-operand ALU forms, immediate forms, loads and stores
/// of four widths with base+index*scale+disp addressing, x86-style load-op
/// fusion (memory source operand), compare-and-branch, calls through a link
/// register, an `Out` instruction that appends a 64-bit value to the
/// program's architected output stream, and `Halt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `rd = op(rs1, rs2)`
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: ArchReg,
        /// First source register.
        rs1: ArchReg,
        /// Second source register.
        rs2: ArchReg,
    },
    /// `rd = op(rs1, imm)`
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: ArchReg,
        /// Source register.
        rs1: ArchReg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd = imm`
    MovImm {
        /// Destination register.
        rd: ArchReg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = rs`
    Mov {
        /// Destination register.
        rd: ArchReg,
        /// Source register.
        rs: ArchReg,
    },
    /// `rd = size-extended load from mem`
    Load {
        /// Destination register.
        rd: ArchReg,
        /// Address expression.
        mem: MemRef,
        /// Access width.
        size: MemSize,
        /// Sign-extend (`true`) or zero-extend (`false`) the loaded value.
        signed: bool,
    },
    /// `mem = low `size` bytes of rs` — cracked into the x86-like STA
    /// (store-address) and STD (store-data) micro-op pair.
    Store {
        /// Data source register.
        rs: ArchReg,
        /// Address expression.
        mem: MemRef,
        /// Access width.
        size: MemSize,
    },
    /// x86-style load-op: `rd = op(rd, load(mem))`, cracked into a load
    /// micro-op targeting a cracker temporary followed by an ALU micro-op.
    LoadOp {
        /// Operation combining the previous value of `rd` with the loaded
        /// value.
        op: AluOp,
        /// Destination (and first source) register.
        rd: ArchReg,
        /// Address expression.
        mem: MemRef,
        /// Access width of the memory operand (zero-extended).
        size: MemSize,
    },
    /// Conditional branch: `if cond(rs1, rs2) goto target`.
    BranchRR {
        /// Condition.
        cond: Cond,
        /// First comparison operand.
        rs1: ArchReg,
        /// Second comparison operand.
        rs2: ArchReg,
        /// Target instruction index.
        target: Rip,
    },
    /// Conditional branch against an immediate: `if cond(rs1, imm) goto target`.
    BranchRI {
        /// Condition.
        cond: Cond,
        /// Comparison register operand.
        rs1: ArchReg,
        /// Comparison immediate operand.
        imm: i64,
        /// Target instruction index.
        target: Rip,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target instruction index.
        target: Rip,
    },
    /// Indirect jump through a register (used to return from calls).
    JumpReg {
        /// Register holding the target instruction index.
        rs: ArchReg,
    },
    /// Direct call: `link = return address; goto target`.
    Call {
        /// Target instruction index.
        target: Rip,
        /// Link register receiving the return address (caller's RIP + 1).
        link: ArchReg,
    },
    /// Appends the value of `rs` to the architected output stream at commit.
    Out {
        /// Register whose value is emitted.
        rs: ArchReg,
    },
    /// Stops the program successfully.
    Halt,
    /// Does nothing.
    Nop,
}

impl Inst {
    /// Returns `true` for instructions that can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::BranchRR { .. }
                | Inst::BranchRI { .. }
                | Inst::Jump { .. }
                | Inst::JumpReg { .. }
                | Inst::Call { .. }
        )
    }

    /// Returns `true` for conditional branches (the only instructions the
    /// direction predictor has to guess).
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self, Inst::BranchRR { .. } | Inst::BranchRI { .. })
    }

    /// Returns `true` for instructions that access data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::LoadOp { .. }
        )
    }

    /// The statically known direct target of this instruction, if any.
    pub fn direct_target(&self) -> Option<Rip> {
        match self {
            Inst::BranchRR { target, .. }
            | Inst::BranchRI { target, .. }
            | Inst::Jump { target }
            | Inst::Call { target, .. } => Some(*target),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::AluRR { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluRI { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Inst::MovImm { rd, imm } => write!(f, "mov {rd}, {imm}"),
            Inst::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Inst::Load {
                rd,
                mem,
                size,
                signed,
            } => write!(
                f,
                "ld{}{} {rd}, {mem}",
                size,
                if *signed { "s" } else { "" }
            ),
            Inst::Store { rs, mem, size } => write!(f, "st{} {mem}, {rs}", size),
            Inst::LoadOp { op, rd, mem, size } => write!(f, "{op}m{} {rd}, {mem}", size),
            Inst::BranchRR {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "b{cond} {rs1}, {rs2}, @{target}"),
            Inst::BranchRI {
                cond,
                rs1,
                imm,
                target,
            } => write!(f, "b{cond}i {rs1}, {imm}, @{target}"),
            Inst::Jump { target } => write!(f, "jmp @{target}"),
            Inst::JumpReg { rs } => write!(f, "jmpr {rs}"),
            Inst::Call { target, link } => write!(f, "call @{target}, link {link}"),
            Inst::Out { rs } => write!(f, "out {rs}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, MemRef};

    #[test]
    fn classification_predicates() {
        let b = Inst::BranchRI {
            cond: Cond::Ne,
            rs1: reg(1),
            imm: 0,
            target: 7,
        };
        assert!(b.is_control());
        assert!(b.is_conditional_branch());
        assert!(!b.is_memory());
        assert_eq!(b.direct_target(), Some(7));

        let ld = Inst::Load {
            rd: reg(2),
            mem: MemRef::base(reg(3)),
            size: MemSize::B8,
            signed: false,
        };
        assert!(ld.is_memory());
        assert!(!ld.is_control());
        assert_eq!(ld.direct_target(), None);

        let call = Inst::Call {
            target: 42,
            link: reg(15),
        };
        assert!(call.is_control());
        assert!(!call.is_conditional_branch());
        assert_eq!(call.direct_target(), Some(42));

        assert!(!Inst::Halt.is_control());
        assert!(!Inst::Nop.is_memory());
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let insts = [
            Inst::AluRR {
                op: AluOp::Add,
                rd: reg(1),
                rs1: reg(2),
                rs2: reg(3),
            },
            Inst::AluRI {
                op: AluOp::Xor,
                rd: reg(1),
                rs1: reg(2),
                imm: -5,
            },
            Inst::MovImm { rd: reg(0), imm: 9 },
            Inst::Mov {
                rd: reg(0),
                rs: reg(1),
            },
            Inst::Load {
                rd: reg(2),
                mem: MemRef::base(reg(3)).disp(8),
                size: MemSize::B4,
                signed: true,
            },
            Inst::Store {
                rs: reg(2),
                mem: MemRef::base(reg(3)),
                size: MemSize::B8,
            },
            Inst::LoadOp {
                op: AluOp::Add,
                rd: reg(4),
                mem: MemRef::base(reg(5)),
                size: MemSize::B8,
            },
            Inst::Jump { target: 3 },
            Inst::JumpReg { rs: reg(15) },
            Inst::Out { rs: reg(1) },
            Inst::Halt,
            Inst::Nop,
        ];
        let rendered: Vec<String> = insts.iter().map(|i| i.to_string()).collect();
        for r in &rendered {
            assert!(!r.is_empty());
        }
        let mut uniq = rendered.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            rendered.len(),
            "display strings must be distinct"
        );
    }
}
