//! # merlin-isa
//!
//! The instruction-set architecture used by the MeRLiN reproduction: a
//! compact 64-bit register–memory ISA whose macro-instructions crack into
//! 1–3 micro-ops, standing in for the x86-64 front end of the paper's Gem5
//! setup.
//!
//! The crate provides:
//!
//! * architectural register names ([`ArchReg`], [`reg`]),
//! * ALU operations and branch conditions with their evaluation semantics
//!   ([`AluOp`], [`Cond`]),
//! * memory access widths and x86-style addressing expressions
//!   ([`MemSize`], [`MemRef`]),
//! * the macro-instruction set ([`Inst`]) and micro-op form ([`Uop`],
//!   [`UopKind`]) together with the cracker ([`decode`], [`decode_into`])
//!   and the once-per-program pre-decoded micro-op arena
//!   ([`DecodedProgram`]) the cycle-level core fetches from,
//! * executable [`Program`] images and the [`ProgramBuilder`]
//!   macro-assembler used by every workload kernel.
//!
//! The (RIP, uPC) pair that identifies a static micro-op — the key of
//! MeRLiN's first grouping step — is defined here: RIP is the macro
//! instruction's index in the program text ([`Rip`]) and uPC is the
//! micro-op's position within its macro-instruction ([`Upc`]).
//!
//! # Examples
//!
//! ```
//! use merlin_isa::{decode, reg, AluOp, Cond, ProgramBuilder};
//!
//! // Build a program that computes 5! and emits it.
//! let mut b = ProgramBuilder::new();
//! b.movi(reg(1), 1); // acc
//! b.movi(reg(2), 5); // n
//! let top = b.bind_label();
//! b.alu_rr(AluOp::Mul, reg(1), reg(1), reg(2));
//! b.alu_ri(AluOp::Sub, reg(2), reg(2), 1);
//! b.branch_ri(Cond::Gt, reg(2), 0, top);
//! b.out(reg(1));
//! b.halt();
//! let program = b.build()?;
//!
//! // Every instruction cracks into at most 3 micro-ops.
//! for (rip, inst) in program.instructions.iter().enumerate() {
//!     assert!(decode(rip as u32, inst).len() <= 3);
//! }
//! # Ok::<(), merlin_isa::BuildError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binio;

mod alu;
mod asm;
mod decode;
mod inst;
mod mem;
mod predecode;
mod program;
mod reg;
mod uop;

pub use alu::{AluOp, AluResult, Cond};
pub use asm::{BuildError, Label, ProgramBuilder};
pub use decode::{branch_compare_immediate, decode, decode_into, MAX_UOPS_PER_INST};
pub use inst::{Inst, Rip};
pub use mem::{MemRef, MemSize};
pub use predecode::DecodedProgram;
pub use program::{DataSegment, Program, DATA_BASE};
pub use reg::{reg, ArchReg, NUM_ARCH_REGS, NUM_GPRS, NUM_TEMPS};
pub use uop::{Uop, UopKind, Upc};
