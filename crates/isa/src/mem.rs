//! Memory access widths and addressing-mode descriptions.

use crate::ArchReg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of a memory access in bytes.
///
/// # Examples
///
/// ```
/// use merlin_isa::MemSize;
/// assert_eq!(MemSize::B8.bytes(), 8);
/// assert_eq!(MemSize::B2.mask(), 0xFFFF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// Bit mask selecting the low `bytes()*8` bits of a value.
    pub fn mask(self) -> u64 {
        match self {
            MemSize::B1 => 0xFF,
            MemSize::B2 => 0xFFFF,
            MemSize::B4 => 0xFFFF_FFFF,
            MemSize::B8 => u64::MAX,
        }
    }

    /// Sign-extends `value` (assumed to hold `bytes()` meaningful low bytes)
    /// to 64 bits.
    pub fn sign_extend(self, value: u64) -> u64 {
        match self {
            MemSize::B1 => value as u8 as i8 as i64 as u64,
            MemSize::B2 => value as u16 as i16 as i64 as u64,
            MemSize::B4 => value as u32 as i32 as i64 as u64,
            MemSize::B8 => value,
        }
    }

    /// Every access width, for exhaustive tests.
    pub fn all() -> &'static [MemSize] {
        &[MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8]
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bytes())
    }
}

/// A base + (optional scaled index) + displacement addressing expression,
/// patterned after the x86-64 `base + index*scale + disp` form so that
/// workload kernels can express realistic array and structure accesses.
///
/// # Examples
///
/// ```
/// use merlin_isa::{reg, MemRef};
/// // r2 + r3*8 + 16
/// let m = MemRef::base(reg(2)).indexed(reg(3), 8).disp(16);
/// assert_eq!(m.to_string(), "[r2 + r3*8 + 16]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base address register.
    pub base: ArchReg,
    /// Optional index register.
    pub index: Option<ArchReg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Signed displacement added to the effective address.
    pub displacement: i64,
}

impl MemRef {
    /// A plain `[base]` reference.
    pub fn base(base: ArchReg) -> Self {
        MemRef {
            base,
            index: None,
            scale: 1,
            displacement: 0,
        }
    }

    /// Adds a scaled index register.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    pub fn indexed(mut self, index: ArchReg, scale: u8) -> Self {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "scale must be 1, 2, 4 or 8 (got {scale})"
        );
        self.index = Some(index);
        self.scale = scale;
        self
    }

    /// Adds a signed displacement.
    pub fn disp(mut self, displacement: i64) -> Self {
        self.displacement = displacement;
        self
    }

    /// Computes the effective address given resolved register values.
    pub fn effective_address(&self, base_value: u64, index_value: u64) -> u64 {
        let mut addr = base_value;
        if self.index.is_some() {
            addr = addr.wrapping_add(index_value.wrapping_mul(self.scale as u64));
        }
        addr.wrapping_add(self.displacement as u64)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some(idx) = self.index {
            write!(f, " + {}*{}", idx, self.scale)?;
        }
        if self.displacement != 0 {
            if self.displacement > 0 {
                write!(f, " + {}", self.displacement)?;
            } else {
                write!(f, " - {}", -self.displacement)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn sizes_and_masks() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B4.mask(), 0xFFFF_FFFF);
        assert_eq!(MemSize::B8.mask(), u64::MAX);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(MemSize::B1.sign_extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(MemSize::B1.sign_extend(0x7F), 0x7F);
        assert_eq!(MemSize::B2.sign_extend(0x8000), 0xFFFF_FFFF_FFFF_8000);
        assert_eq!(MemSize::B4.sign_extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(MemSize::B8.sign_extend(u64::MAX), u64::MAX);
    }

    #[test]
    fn effective_address_with_index_and_disp() {
        let m = MemRef::base(reg(1)).indexed(reg(2), 8).disp(-8);
        assert_eq!(m.effective_address(0x1000, 4), 0x1000 + 32 - 8);
    }

    #[test]
    fn effective_address_plain_base() {
        let m = MemRef::base(reg(1));
        assert_eq!(m.effective_address(0x2000, 999), 0x2000);
    }

    #[test]
    #[should_panic]
    fn invalid_scale_panics() {
        let _ = MemRef::base(reg(0)).indexed(reg(1), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MemRef::base(reg(4)).to_string(), "[r4]");
        assert_eq!(MemRef::base(reg(4)).disp(-4).to_string(), "[r4 - 4]");
        assert_eq!(
            MemRef::base(reg(4)).indexed(reg(5), 2).disp(12).to_string(),
            "[r4 + r5*2 + 12]"
        );
    }
}
