//! A small self-describing binary codec used to persist checkpoint stores
//! to disk.
//!
//! The workspace builds offline, so `serde` is a marker-trait stub and real
//! serialisation frameworks are unavailable; this module provides the
//! minimal bincode-style encoding the session cache needs: fixed-width
//! little-endian scalars, `u64` length prefixes for containers, and a one
//! byte tag per enum variant.  Every implementation round-trips exactly
//! (`decode(encode(x)) == x`) and decoding validates tags, lengths and
//! invariants so a truncated or corrupt cache file surfaces as a
//! [`DecodeError`] rather than a panic or a bogus value.
//!
//! The trait lives in `merlin-isa` — the bottom of the crate stack — so the
//! CPU crate can implement it for its snapshot types without orphan-rule
//! trouble.
//!
//! # Examples
//!
//! ```
//! use merlin_isa::binio::{BinCode, ByteReader};
//!
//! let mut buf = Vec::new();
//! (7u64, vec![true, false]).encode(&mut buf);
//! let mut r = ByteReader::new(&buf);
//! let back: (u64, Vec<bool>) = BinCode::decode(&mut r).unwrap();
//! assert_eq!(back, (7, vec![true, false]));
//! assert!(r.is_at_end());
//! ```

use crate::{AluOp, ArchReg, Cond, MemRef, MemSize, Uop, UopKind, NUM_ARCH_REGS};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// Errors produced while decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A tag, length or field violated the type's invariants.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over the byte stream being decoded.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
}

/// Types with an exact binary encoding.
pub trait BinCode: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated input or invalid content.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;
}

/// Upper bound on the element capacity any container decode reserves up
/// front.
///
/// A length prefix is validated against the bytes actually remaining (each
/// element consumes at least one byte), but `Vec::with_capacity(n)` would
/// still reserve `n * size_of::<T>()` bytes before a single element has been
/// proven decodable — for wide element types that is a large multiple of the
/// file size.  Capping the pre-allocation keeps the worst-case memory cost of
/// a corrupt length prefix proportional to the corrupt input itself; honest
/// longer containers simply grow as they decode.
const MAX_PREALLOC_ELEMS: usize = 1 << 16;

/// Capacity to reserve up front for a container that claims `n` elements.
fn bounded_capacity(n: usize) -> usize {
    n.min(MAX_PREALLOC_ELEMS)
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: BinCode>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value from a byte slice, requiring the slice to be consumed
/// exactly.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, corrupt or over-long input.
pub fn decode_from_slice<T: BinCode>(buf: &[u8]) -> Result<T, DecodeError> {
    let mut r = ByteReader::new(buf);
    let value = T::decode(&mut r)?;
    if !r.is_at_end() {
        return Err(DecodeError::Invalid("trailing bytes after value"));
    }
    Ok(value)
}

macro_rules! impl_scalar {
    ($($ty:ty),*) => {$(
        impl BinCode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                Ok(<$ty>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

impl_scalar!(u8, u16, u32, u64, i64);

impl BinCode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(r)?).map_err(|_| DecodeError::Invalid("usize overflow"))
    }
}

impl BinCode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool tag")),
        }
    }
}

impl<T: BinCode> BinCode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("Option tag")),
        }
    }
}

impl<T: BinCode> BinCode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        // Every element consumes at least one byte, so `remaining` bounds the
        // plausible length; the reserved capacity is additionally capped so a
        // corrupt prefix cannot trigger a huge up-front allocation even for
        // wide element types.
        if n > r.remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut out = Vec::with_capacity(bounded_capacity(n));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl BinCode for Box<[u8]> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        Ok(r.take(n)?.to_vec().into_boxed_slice())
    }
}

impl BinCode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        String::from_utf8(r.take(n)?.to_vec()).map_err(|_| DecodeError::Invalid("utf-8 string"))
    }
}

impl<T: BinCode> BinCode for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<A: BinCode, B: BinCode> BinCode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: BinCode, const N: usize> BinCode for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into()
            .map_err(|_| DecodeError::Invalid("array length"))
    }
}

// Hash maps are written in ascending key order so the encoding of a given
// map is unique — the session fingerprint hashes encoded bytes and must not
// depend on iteration order.
impl<K: BinCode + Ord + Hash + Eq, V: BinCode> BinCode for HashMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        let sorted: BTreeMap<&K, &V> = self.iter().collect();
        sorted.len().encode(out);
        for (k, v) in sorted {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        if n > r.remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut out = HashMap::with_capacity(bounded_capacity(n));
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(k, v).is_some() {
                return Err(DecodeError::Invalid("duplicate map key"));
            }
        }
        Ok(out)
    }
}

// --- ISA types -----------------------------------------------------------

impl BinCode for ArchReg {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.index() as u8).encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let idx = u8::decode(r)? as usize;
        if idx >= NUM_ARCH_REGS {
            return Err(DecodeError::Invalid("architectural register index"));
        }
        Ok(crate::reg::from_index(idx))
    }
}

macro_rules! impl_fieldless_enum {
    ($ty:ident { $($variant:ident = $tag:literal),* $(,)? }) => {
        impl BinCode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.push(match self { $($ty::$variant => $tag),* });
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                match u8::decode(r)? {
                    $($tag => Ok($ty::$variant),)*
                    _ => Err(DecodeError::Invalid(stringify!($ty))),
                }
            }
        }
    };
}

impl_fieldless_enum!(AluOp {
    Add = 0, Sub = 1, And = 2, Or = 3, Xor = 4, Shl = 5, Shr = 6, Sar = 7,
    Mul = 8, Div = 9, Rem = 10, Slt = 11, Sltu = 12, Min = 13, Max = 14,
});

impl_fieldless_enum!(Cond {
    Eq = 0, Ne = 1, Lt = 2, Ge = 3, Le = 4, Gt = 5, Ltu = 6, Geu = 7,
});

impl_fieldless_enum!(MemSize { B1 = 0, B2 = 1, B4 = 2, B8 = 3 });

impl BinCode for MemRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.base.encode(out);
        self.index.encode(out);
        self.scale.encode(out);
        self.displacement.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let base = ArchReg::decode(r)?;
        let index = Option::<ArchReg>::decode(r)?;
        let scale = u8::decode(r)?;
        if !matches!(scale, 1 | 2 | 4 | 8) {
            return Err(DecodeError::Invalid("memory reference scale"));
        }
        let displacement = i64::decode(r)?;
        Ok(MemRef {
            base,
            index,
            scale,
            displacement,
        })
    }
}

impl BinCode for UopKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            UopKind::Alu(op) => {
                out.push(0);
                op.encode(out);
            }
            UopKind::Load => out.push(1),
            UopKind::StoreAddr => out.push(2),
            UopKind::StoreData => out.push(3),
            UopKind::Branch(c) => {
                out.push(4);
                c.encode(out);
            }
            UopKind::Jump => out.push(5),
            UopKind::JumpReg => out.push(6),
            UopKind::Call => out.push(7),
            UopKind::Out => out.push(8),
            UopKind::Halt => out.push(9),
            UopKind::Nop => out.push(10),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => UopKind::Alu(AluOp::decode(r)?),
            1 => UopKind::Load,
            2 => UopKind::StoreAddr,
            3 => UopKind::StoreData,
            4 => UopKind::Branch(Cond::decode(r)?),
            5 => UopKind::Jump,
            6 => UopKind::JumpReg,
            7 => UopKind::Call,
            8 => UopKind::Out,
            9 => UopKind::Halt,
            10 => UopKind::Nop,
            _ => return Err(DecodeError::Invalid("UopKind")),
        })
    }
}

impl BinCode for Uop {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rip.encode(out);
        self.upc.encode(out);
        self.kind.encode(out);
        self.srcs.encode(out);
        self.dst.encode(out);
        self.imm.encode(out);
        self.mem.encode(out);
        self.mem_size.encode(out);
        self.mem_signed.encode(out);
        self.cmp_with_imm.encode(out);
        self.cmp_imm.encode(out);
        self.last_in_inst.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Uop {
            rip: BinCode::decode(r)?,
            upc: BinCode::decode(r)?,
            kind: BinCode::decode(r)?,
            srcs: BinCode::decode(r)?,
            dst: BinCode::decode(r)?,
            imm: BinCode::decode(r)?,
            mem: BinCode::decode(r)?,
            mem_size: BinCode::decode(r)?,
            mem_signed: BinCode::decode(r)?,
            cmp_with_imm: BinCode::decode(r)?,
            cmp_imm: BinCode::decode(r)?,
            last_in_inst: BinCode::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    fn roundtrip<T: BinCode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn scalars_and_containers_roundtrip() {
        roundtrip(0xDEAD_BEEF_u64);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u8));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(String::from("golden"));
        roundtrip(VecDeque::from(vec![(1u32, false), (2, true)]));
        roundtrip([Some(reg(1)), None, Some(reg(5))]);
        roundtrip(vec![0u8, 255].into_boxed_slice());
        let mut m = HashMap::new();
        m.insert(3u32, 30u64);
        m.insert(1, 10);
        roundtrip(m);
    }

    #[test]
    fn map_encoding_is_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..100u32 {
            a.insert(k, u64::from(k) * 3);
        }
        for k in (0..100u32).rev() {
            b.insert(k, u64::from(k) * 3);
        }
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }

    #[test]
    fn isa_types_roundtrip() {
        for op in [AluOp::Add, AluOp::Max, AluOp::Div] {
            roundtrip(op);
        }
        for c in [Cond::Eq, Cond::Geu] {
            roundtrip(c);
        }
        for s in [MemSize::B1, MemSize::B8] {
            roundtrip(s);
        }
        roundtrip(reg(7));
        roundtrip(MemRef::base(reg(2)).indexed(reg(3), 8).disp(-16));
        let mut u = Uop::blank(17, 2, UopKind::Branch(Cond::Lt));
        u.srcs = [Some(reg(1)), Some(reg(2)), None];
        u.imm = 99;
        u.cmp_with_imm = true;
        u.cmp_imm = -5;
        u.last_in_inst = true;
        roundtrip(u);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        // Truncated scalar.
        assert_eq!(
            decode_from_slice::<u64>(&[1, 2, 3]),
            Err(DecodeError::UnexpectedEof)
        );
        // Bad enum tag.
        assert_eq!(
            decode_from_slice::<AluOp>(&[200]),
            Err(DecodeError::Invalid("AluOp"))
        );
        // Bad bool.
        assert!(decode_from_slice::<bool>(&[9]).is_err());
        // Register index out of range.
        assert!(decode_from_slice::<ArchReg>(&[250]).is_err());
        // Length prefix larger than the remaining input.
        let mut buf = Vec::new();
        1_000_000usize.encode(&mut buf);
        assert_eq!(
            decode_from_slice::<Vec<u8>>(&buf),
            Err(DecodeError::UnexpectedEof)
        );
        // Trailing garbage.
        let mut buf = encode_to_vec(&5u8);
        buf.push(0);
        assert!(decode_from_slice::<u8>(&buf).is_err());
        // Invalid scale.
        let mut buf = Vec::new();
        reg(0).encode(&mut buf);
        Option::<ArchReg>::None.encode(&mut buf);
        3u8.encode(&mut buf); // scale 3 is not 1/2/4/8
        0i64.encode(&mut buf);
        assert!(decode_from_slice::<MemRef>(&buf).is_err());
    }

    #[test]
    fn huge_length_prefix_cannot_force_a_huge_preallocation() {
        // A length prefix claiming more elements than bytes remain is
        // rejected before any allocation at all.
        let mut buf = Vec::new();
        (usize::MAX / 2).encode(&mut buf);
        assert_eq!(
            decode_from_slice::<Vec<u64>>(&buf),
            Err(DecodeError::UnexpectedEof)
        );
        assert_eq!(
            decode_from_slice::<HashMap<u64, u64>>(&buf),
            Err(DecodeError::UnexpectedEof)
        );

        // A prefix that *is* covered by remaining bytes still only reserves a
        // bounded capacity up front; decode then fails element-by-element
        // without ever holding `n * size_of::<T>()` bytes.  (One-byte
        // "elements" of a wide type make the claimed count plausible.)
        let claimed = MAX_PREALLOC_ELEMS * 4;
        let mut buf = Vec::new();
        claimed.encode(&mut buf);
        buf.resize(buf.len() + claimed, 0u8);
        // [u64; 4] elements need 32 bytes each, so this must fail with EOF —
        // the point is that it fails cheaply rather than pre-reserving
        // `claimed * 32` bytes.
        assert_eq!(
            decode_from_slice::<Vec<[u64; 4]>>(&buf),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn bounded_capacity_preserves_small_and_caps_large() {
        assert_eq!(bounded_capacity(0), 0);
        assert_eq!(bounded_capacity(17), 17);
        assert_eq!(bounded_capacity(MAX_PREALLOC_ELEMS), MAX_PREALLOC_ELEMS);
        assert_eq!(bounded_capacity(usize::MAX), MAX_PREALLOC_ELEMS);
    }
}
