//! Macro-instruction → micro-op cracking.
//!
//! The cracker mirrors an x86-64 decoder at the level of detail MeRLiN
//! cares about: one static instruction may touch a microarchitectural
//! structure with *several distinct micro-ops* (e.g. the STA/STD pair of a
//! store, or the load and ALU halves of a memory-operand instruction), and
//! those micro-ops must carry stable (RIP, uPC) identifiers because MeRLiN's
//! first grouping step classifies faults by the micro-op that reads the
//! faulty entry.

use crate::{ArchReg, Inst, Rip, Uop, UopKind};

/// Maximum number of micro-ops a single macro-instruction can crack into.
pub const MAX_UOPS_PER_INST: usize = 3;

/// Cracks a macro-instruction into its micro-op sequence.
///
/// The returned vector always contains between 1 and [`MAX_UOPS_PER_INST`]
/// micro-ops; the final micro-op has `last_in_inst == true`.
///
/// # Examples
///
/// ```
/// use merlin_isa::{decode, reg, Inst, MemRef, MemSize, UopKind};
/// let store = Inst::Store {
///     rs: reg(1),
///     mem: MemRef::base(reg(2)).disp(8),
///     size: MemSize::B8,
/// };
/// let uops = decode(4, &store);
/// assert_eq!(uops.len(), 2);
/// assert_eq!(uops[0].kind, UopKind::StoreAddr);
/// assert_eq!(uops[1].kind, UopKind::StoreData);
/// assert_eq!(uops[1].upc, 1);
/// assert!(uops[1].last_in_inst);
/// ```
pub fn decode(rip: Rip, inst: &Inst) -> Vec<Uop> {
    let mut uops = Vec::with_capacity(MAX_UOPS_PER_INST);
    decode_into(rip, inst, &mut uops);
    uops
}

/// Cracks a macro-instruction, appending its micro-ops to `out` instead of
/// allocating a fresh vector — the allocation-free form behind both
/// [`decode`] and the one-shot arena build of
/// [`DecodedProgram`](crate::DecodedProgram).
///
/// Appends between 1 and [`MAX_UOPS_PER_INST`] micro-ops; the final appended
/// micro-op has `last_in_inst == true`.
pub fn decode_into(rip: Rip, inst: &Inst, out: &mut Vec<Uop>) {
    let start = out.len();
    match *inst {
        Inst::AluRR { op, rd, rs1, rs2 } => {
            let mut u = Uop::blank(rip, 0, UopKind::Alu(op));
            u.dst = Some(rd);
            u.srcs = [Some(rs1), Some(rs2), None];
            out.push(u);
        }
        Inst::AluRI { op, rd, rs1, imm } => {
            let mut u = Uop::blank(rip, 0, UopKind::Alu(op));
            u.dst = Some(rd);
            u.srcs = [Some(rs1), None, None];
            u.imm = imm;
            u.cmp_with_imm = true;
            out.push(u);
        }
        Inst::MovImm { rd, imm } => {
            // mov rd, imm  ==  or rd, zero-sources, imm : modelled as an ALU
            // op with no register sources.
            let mut u = Uop::blank(rip, 0, UopKind::Alu(crate::AluOp::Or));
            u.dst = Some(rd);
            u.imm = imm;
            u.cmp_with_imm = true;
            out.push(u);
        }
        Inst::Mov { rd, rs } => {
            let mut u = Uop::blank(rip, 0, UopKind::Alu(crate::AluOp::Or));
            u.dst = Some(rd);
            u.srcs = [Some(rs), None, None];
            u.imm = 0;
            u.cmp_with_imm = true;
            out.push(u);
        }
        Inst::Load {
            rd,
            mem,
            size,
            signed,
        } => {
            let mut u = Uop::blank(rip, 0, UopKind::Load);
            u.dst = Some(rd);
            u.srcs = [Some(mem.base), mem.index, None];
            u.mem = Some(mem);
            u.mem_size = Some(size);
            u.mem_signed = signed;
            out.push(u);
        }
        Inst::Store { rs, mem, size } => {
            // STA computes the address; STD supplies the data.
            let mut sta = Uop::blank(rip, 0, UopKind::StoreAddr);
            sta.srcs = [Some(mem.base), mem.index, None];
            sta.mem = Some(mem);
            sta.mem_size = Some(size);
            let mut std_uop = Uop::blank(rip, 1, UopKind::StoreData);
            std_uop.srcs = [Some(rs), None, None];
            std_uop.mem_size = Some(size);
            out.push(sta);
            out.push(std_uop);
        }
        Inst::LoadOp { op, rd, mem, size } => {
            // Load the memory operand into a cracker temporary, then combine.
            let tmp = ArchReg::temp(0);
            let mut ld = Uop::blank(rip, 0, UopKind::Load);
            ld.dst = Some(tmp);
            ld.srcs = [Some(mem.base), mem.index, None];
            ld.mem = Some(mem);
            ld.mem_size = Some(size);
            let mut alu = Uop::blank(rip, 1, UopKind::Alu(op));
            alu.dst = Some(rd);
            alu.srcs = [Some(rd), Some(tmp), None];
            out.push(ld);
            out.push(alu);
        }
        Inst::BranchRR {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let mut u = Uop::blank(rip, 0, UopKind::Branch(cond));
            u.srcs = [Some(rs1), Some(rs2), None];
            u.imm = target as i64;
            out.push(u);
        }
        Inst::BranchRI {
            cond,
            rs1,
            imm,
            target,
        } => {
            // Compare-with-immediate branch: crack into a compare micro-op
            // producing a temporary predicate, then the branch micro-op, so
            // that a single static instruction exercises two distinct uPCs
            // (as x86 cmp/jcc fusion would after cracking).
            let tmp = ArchReg::temp(1);
            let mut cmp = Uop::blank(rip, 0, UopKind::Alu(crate::AluOp::Sub));
            cmp.dst = Some(tmp);
            cmp.srcs = [Some(rs1), None, None];
            cmp.imm = imm;
            cmp.cmp_with_imm = true;
            let mut br = Uop::blank(rip, 1, UopKind::Branch(cond));
            // The branch compares the original register against the
            // comparison immediate; the compare micro-op exists to model the
            // extra register-file read traffic of x86 cmp/jcc pairs and to
            // give the static instruction a second uPC.
            br.srcs = [Some(rs1), None, None];
            br.imm = target as i64;
            br.cmp_with_imm = true;
            br.cmp_imm = imm;
            out.push(cmp);
            out.push(br);
        }
        Inst::Jump { target } => {
            let mut u = Uop::blank(rip, 0, UopKind::Jump);
            u.imm = target as i64;
            out.push(u);
        }
        Inst::JumpReg { rs } => {
            let mut u = Uop::blank(rip, 0, UopKind::JumpReg);
            u.srcs = [Some(rs), None, None];
            out.push(u);
        }
        Inst::Call { target, link } => {
            let mut u = Uop::blank(rip, 0, UopKind::Call);
            u.dst = Some(link);
            u.imm = target as i64;
            out.push(u);
        }
        Inst::Out { rs } => {
            let mut u = Uop::blank(rip, 0, UopKind::Out);
            u.srcs = [Some(rs), None, None];
            out.push(u);
        }
        Inst::Halt => out.push(Uop::blank(rip, 0, UopKind::Halt)),
        Inst::Nop => out.push(Uop::blank(rip, 0, UopKind::Nop)),
    }
    let n = out.len() - start;
    debug_assert!((1..=MAX_UOPS_PER_INST).contains(&n));
    let last = out.len() - 1;
    out[last].last_in_inst = true;
    for (i, u) in out[start..].iter().enumerate() {
        debug_assert_eq!(u.upc as usize, i, "uPC must equal position");
        debug_assert_eq!(u.rip, rip);
    }
}

/// The comparison immediate of a `BranchRI` macro-instruction, if any.
/// Provided for tooling; the cracked branch micro-op already carries the
/// value in [`Uop::cmp_imm`].
pub fn branch_compare_immediate(inst: &Inst) -> Option<i64> {
    match inst {
        Inst::BranchRI { imm, .. } => Some(*imm),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, AluOp, Cond, MemRef, MemSize};

    fn sample_instructions() -> Vec<Inst> {
        vec![
            Inst::AluRR {
                op: AluOp::Add,
                rd: reg(1),
                rs1: reg(2),
                rs2: reg(3),
            },
            Inst::AluRI {
                op: AluOp::Shl,
                rd: reg(1),
                rs1: reg(1),
                imm: 3,
            },
            Inst::MovImm {
                rd: reg(4),
                imm: -7,
            },
            Inst::Mov {
                rd: reg(5),
                rs: reg(4),
            },
            Inst::Load {
                rd: reg(6),
                mem: MemRef::base(reg(7)).indexed(reg(8), 8),
                size: MemSize::B8,
                signed: false,
            },
            Inst::Store {
                rs: reg(6),
                mem: MemRef::base(reg(7)).disp(16),
                size: MemSize::B4,
            },
            Inst::LoadOp {
                op: AluOp::Xor,
                rd: reg(9),
                mem: MemRef::base(reg(7)),
                size: MemSize::B8,
            },
            Inst::BranchRR {
                cond: Cond::Lt,
                rs1: reg(1),
                rs2: reg(2),
                target: 5,
            },
            Inst::BranchRI {
                cond: Cond::Ne,
                rs1: reg(1),
                imm: 0,
                target: 9,
            },
            Inst::Jump { target: 2 },
            Inst::JumpReg { rs: reg(15) },
            Inst::Call {
                target: 30,
                link: reg(15),
            },
            Inst::Out { rs: reg(1) },
            Inst::Halt,
            Inst::Nop,
        ]
    }

    #[test]
    fn every_instruction_cracks_within_bounds() {
        for (i, inst) in sample_instructions().iter().enumerate() {
            let uops = decode(i as Rip, inst);
            assert!(!uops.is_empty());
            assert!(uops.len() <= MAX_UOPS_PER_INST);
            assert!(uops.last().unwrap().last_in_inst);
            for (j, u) in uops.iter().enumerate() {
                assert_eq!(u.rip, i as Rip);
                assert_eq!(u.upc as usize, j);
                if j + 1 < uops.len() {
                    assert!(!u.last_in_inst);
                }
            }
        }
    }

    #[test]
    fn store_cracks_into_sta_std() {
        let st = Inst::Store {
            rs: reg(3),
            mem: MemRef::base(reg(4)).indexed(reg(5), 4).disp(-8),
            size: MemSize::B8,
        };
        let uops = decode(11, &st);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, UopKind::StoreAddr);
        assert_eq!(uops[0].num_sources(), 2);
        assert_eq!(uops[1].kind, UopKind::StoreData);
        assert_eq!(uops[1].srcs[0], Some(reg(3)));
    }

    #[test]
    fn load_op_uses_temporary() {
        let lo = Inst::LoadOp {
            op: AluOp::Add,
            rd: reg(2),
            mem: MemRef::base(reg(3)),
            size: MemSize::B8,
        };
        let uops = decode(0, &lo);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, UopKind::Load);
        let tmp = uops[0].dst.unwrap();
        assert!(tmp.is_temp());
        assert_eq!(uops[1].kind, UopKind::Alu(AluOp::Add));
        assert!(uops[1].sources().any(|s| s == tmp));
        assert!(uops[1].sources().any(|s| s == reg(2)));
    }

    #[test]
    fn branch_ri_has_two_upcs() {
        let b = Inst::BranchRI {
            cond: Cond::Ge,
            rs1: reg(1),
            imm: 100,
            target: 55,
        };
        let uops = decode(7, &b);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[1].kind, UopKind::Branch(Cond::Ge));
        assert_eq!(uops[1].imm, 55);
        assert_eq!(uops[1].cmp_imm, 100);
        assert!(uops[1].cmp_with_imm);
        assert_eq!(branch_compare_immediate(&b), Some(100));
    }

    #[test]
    fn direct_targets_match_uop_imm() {
        let j = Inst::Jump { target: 77 };
        let uops = decode(1, &j);
        assert_eq!(uops[0].imm, 77);
        let c = Inst::Call {
            target: 12,
            link: reg(14),
        };
        let uops = decode(2, &c);
        assert_eq!(uops[0].imm, 12);
        assert_eq!(uops[0].dst, Some(reg(14)));
    }
}
