//! Program builder: a small macro-assembler with labels, forward references
//! and data allocation, used by all workload kernels.

use crate::{
    reg, AluOp, ArchReg, Cond, DataSegment, Inst, MemRef, MemSize, Program, Rip, DATA_BASE,
};
use std::collections::HashMap;
use std::fmt;

/// A control-flow label handed out by [`ProgramBuilder::label`].
///
/// Labels may be referenced by branches before they are bound; all references
/// are patched when [`ProgramBuilder::build`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced by a branch/jump/call but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    RebindLabel(Label),
    /// The program has no `Halt` instruction, so it can never terminate
    /// cleanly.
    MissingHalt,
    /// A branch, jump or call targets an instruction outside the program
    /// text.  Caught at build time so a fault-injection worker never hits
    /// the equivalent fetch-time panic mid-campaign.
    TargetOutOfRange {
        /// RIP of the offending control instruction.
        rip: Rip,
        /// Its out-of-range target.
        target: Rip,
        /// Number of instructions in the program.
        len: u32,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {:?} referenced but never bound", l),
            BuildError::RebindLabel(l) => write!(f, "label {:?} bound more than once", l),
            BuildError::MissingHalt => write!(f, "program contains no halt instruction"),
            BuildError::TargetOutOfRange { rip, target, len } => write!(
                f,
                "instruction {rip} targets {target}, outside the program text (0..{len})"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Program`]s.
///
/// # Examples
///
/// A loop that sums the first 10 integers and emits the result:
///
/// ```
/// use merlin_isa::{reg, AluOp, Cond, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(reg(1), 0); // sum
/// b.movi(reg(2), 1); // i
/// let top = b.bind_label();
/// b.alu_rr(AluOp::Add, reg(1), reg(1), reg(2));
/// b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
/// b.branch_ri(Cond::Le, reg(2), 10, top);
/// b.out(reg(1));
/// b.halt();
/// let program = b.build().unwrap();
/// assert!(program.len() >= 7);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Inst>,
    data: Vec<DataSegment>,
    labels: Vec<Option<Rip>>,
    /// (instruction index, label) pairs whose target needs patching.
    fixups: Vec<(usize, Label)>,
    next_data: u64,
    extra_data: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder; data allocation starts at
    /// [`DATA_BASE`](crate::DATA_BASE).
    pub fn new() -> Self {
        ProgramBuilder {
            instructions: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            next_data: DATA_BASE,
            extra_data: 0,
        }
    }

    /// The RIP the next pushed instruction will occupy.
    pub fn here(&self) -> Rip {
        self.instructions.len() as Rip
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (builder misuse).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {label:?} bound twice"
        );
        self.labels[label.0] = Some(self.here());
    }

    /// Creates a label already bound to the current position.
    pub fn bind_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    // ----- data allocation ---------------------------------------------

    /// Copies `bytes` into a fresh data allocation and returns its address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.next_data;
        self.data.push(DataSegment {
            addr,
            bytes: bytes.to_vec(),
        });
        self.next_data += bytes.len() as u64;
        self.align(8);
        addr
    }

    /// Allocates and initialises an array of 64-bit words; returns its address.
    pub fn alloc_words(&mut self, words: &[u64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.alloc_bytes(&bytes)
    }

    /// Allocates and initialises an array of 32-bit words; returns its address.
    pub fn alloc_words32(&mut self, words: &[u32]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.alloc_bytes(&bytes)
    }

    /// Reserves `len` zero-initialised bytes and returns the address.
    pub fn reserve(&mut self, len: u64) -> u64 {
        let addr = self.next_data;
        self.next_data += len;
        self.extra_data += len;
        self.align(8);
        addr
    }

    fn align(&mut self, to: u64) {
        let rem = self.next_data % to;
        if rem != 0 {
            self.next_data += to - rem;
        }
    }

    // ----- raw instruction push -----------------------------------------

    /// Pushes an arbitrary instruction and returns its RIP.
    pub fn push(&mut self, inst: Inst) -> Rip {
        let rip = self.here();
        self.instructions.push(inst);
        rip
    }

    // ----- convenience emitters ------------------------------------------

    /// `rd = op(rs1, rs2)`
    pub fn alu_rr(&mut self, op: AluOp, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> Rip {
        self.push(Inst::AluRR { op, rd, rs1, rs2 })
    }

    /// `rd = op(rs1, imm)`
    pub fn alu_ri(&mut self, op: AluOp, rd: ArchReg, rs1: ArchReg, imm: i64) -> Rip {
        self.push(Inst::AluRI { op, rd, rs1, imm })
    }

    /// `rd = imm`
    pub fn movi(&mut self, rd: ArchReg, imm: i64) -> Rip {
        self.push(Inst::MovImm { rd, imm })
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: ArchReg, rs: ArchReg) -> Rip {
        self.push(Inst::Mov { rd, rs })
    }

    /// 64-bit load `rd = [mem]`.
    pub fn load(&mut self, rd: ArchReg, mem: MemRef) -> Rip {
        self.load_sized(rd, mem, MemSize::B8, false)
    }

    /// Load with explicit width and signedness.
    pub fn load_sized(&mut self, rd: ArchReg, mem: MemRef, size: MemSize, signed: bool) -> Rip {
        self.push(Inst::Load {
            rd,
            mem,
            size,
            signed,
        })
    }

    /// 64-bit store `[mem] = rs`.
    pub fn store(&mut self, rs: ArchReg, mem: MemRef) -> Rip {
        self.store_sized(rs, mem, MemSize::B8)
    }

    /// Store with explicit width.
    pub fn store_sized(&mut self, rs: ArchReg, mem: MemRef, size: MemSize) -> Rip {
        self.push(Inst::Store { rs, mem, size })
    }

    /// x86-style load-op `rd = op(rd, [mem])` (64-bit memory operand).
    pub fn load_op(&mut self, op: AluOp, rd: ArchReg, mem: MemRef) -> Rip {
        self.push(Inst::LoadOp {
            op,
            rd,
            mem,
            size: MemSize::B8,
        })
    }

    /// Conditional branch on two registers.
    pub fn branch_rr(&mut self, cond: Cond, rs1: ArchReg, rs2: ArchReg, target: Label) -> Rip {
        let rip = self.push(Inst::BranchRR {
            cond,
            rs1,
            rs2,
            target: 0,
        });
        self.fixups.push((rip as usize, target));
        rip
    }

    /// Conditional branch comparing a register with an immediate.
    pub fn branch_ri(&mut self, cond: Cond, rs1: ArchReg, imm: i64, target: Label) -> Rip {
        let rip = self.push(Inst::BranchRI {
            cond,
            rs1,
            imm,
            target: 0,
        });
        self.fixups.push((rip as usize, target));
        rip
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) -> Rip {
        let rip = self.push(Inst::Jump { target: 0 });
        self.fixups.push((rip as usize, target));
        rip
    }

    /// Indirect jump through a register.
    pub fn jump_reg(&mut self, rs: ArchReg) -> Rip {
        self.push(Inst::JumpReg { rs })
    }

    /// Call a label, linking through `link` (conventionally `r15`).
    pub fn call(&mut self, target: Label, link: ArchReg) -> Rip {
        let rip = self.push(Inst::Call { target: 0, link });
        self.fixups.push((rip as usize, target));
        rip
    }

    /// Return from a call made with link register `link`.
    pub fn ret(&mut self, link: ArchReg) -> Rip {
        self.jump_reg(link)
    }

    /// Emit the value of `rs` to the output stream.
    pub fn out(&mut self, rs: ArchReg) -> Rip {
        self.push(Inst::Out { rs })
    }

    /// Stop the program.
    pub fn halt(&mut self) -> Rip {
        self.push(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> Rip {
        self.push(Inst::Nop)
    }

    /// Default link register used by the calling convention of the workload
    /// kernels.
    pub fn link_reg() -> ArchReg {
        reg(15)
    }

    // ----- finalisation ---------------------------------------------------

    /// Resolves all label references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was never
    /// bound, and [`BuildError::MissingHalt`] if the program cannot
    /// terminate.
    pub fn build(mut self) -> Result<Program, BuildError> {
        // Patch fixups.
        let mut resolved: HashMap<usize, Rip> = HashMap::new();
        for (idx, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(BuildError::UnboundLabel(*label))?;
            resolved.insert(*idx, target);
        }
        for (idx, target) in resolved {
            match &mut self.instructions[idx] {
                Inst::BranchRR { target: t, .. }
                | Inst::BranchRI { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t, .. } => *t = target,
                other => unreachable!("fixup applied to non-control instruction {other}"),
            }
        }
        if !self.instructions.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(BuildError::MissingHalt);
        }
        // With labels patched, every direct target — label-resolved or
        // pushed raw — must land inside the text.
        let len = self.instructions.len() as Rip;
        for (rip, inst) in self.instructions.iter().enumerate() {
            if let Some(target) = inst.direct_target() {
                if target >= len {
                    return Err(BuildError::TargetOutOfRange {
                        rip: rip as Rip,
                        target,
                        len,
                    });
                }
            }
        }
        let data_size = (self.next_data - DATA_BASE).max(8) + 4096;
        Ok(Program {
            instructions: self.instructions,
            data: self.data,
            data_size,
            entry: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.movi(reg(1), 5);
        b.branch_ri(Cond::Eq, reg(1), 5, skip);
        b.movi(reg(1), 99); // skipped
        b.bind(skip);
        let top = b.bind_label();
        b.alu_ri(AluOp::Sub, reg(1), reg(1), 1);
        b.branch_ri(Cond::Gt, reg(1), 0, top);
        b.halt();
        let p = b.build().unwrap();
        // Forward branch targets the bound position of `skip`.
        match p.instructions[1] {
            Inst::BranchRI { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
        // Backward branch targets `top`.
        match p.instructions[4] {
            Inst::BranchRI { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        b.halt();
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn raw_out_of_range_target_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Jump { target: 40 });
        b.halt();
        assert_eq!(
            b.build(),
            Err(BuildError::TargetOutOfRange {
                rip: 0,
                target: 40,
                len: 2
            })
        );
    }

    #[test]
    fn label_bound_past_the_text_is_an_error() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.jump(end);
        b.halt();
        b.bind(end); // bound one past the last instruction
        assert!(matches!(
            b.build(),
            Err(BuildError::TargetOutOfRange {
                target: 2,
                len: 2,
                ..
            })
        ));
    }

    #[test]
    fn missing_halt_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(0), 1);
        assert!(matches!(b.build(), Err(BuildError::MissingHalt)));
    }

    #[test]
    #[should_panic]
    fn binding_twice_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_allocation_is_disjoint_and_aligned() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc_bytes(&[1, 2, 3]);
        let c = b.alloc_words(&[10, 20]);
        let d = b.reserve(100);
        b.halt();
        assert_eq!(a, DATA_BASE);
        assert!(c >= a + 3);
        assert_eq!(c % 8, 0);
        assert!(d >= c + 16);
        assert_eq!(d % 8, 0);
        let p = b.build().unwrap();
        assert!(p.data_size >= 100 + 16 + 3);
        assert_eq!(p.data.len(), 2);
    }

    #[test]
    fn call_and_ret_emit_expected_instructions() {
        let mut b = ProgramBuilder::new();
        let func = b.label();
        b.call(func, ProgramBuilder::link_reg());
        b.halt();
        b.bind(func);
        b.ret(ProgramBuilder::link_reg());
        let p = b.build().unwrap();
        match p.instructions[0] {
            Inst::Call { target, link } => {
                assert_eq!(target, 2);
                assert_eq!(link, reg(15));
            }
            ref other => panic!("unexpected {other}"),
        }
        assert!(matches!(p.instructions[2], Inst::JumpReg { .. }));
    }
}
