//! Arithmetic/logic operations and branch conditions with their evaluation
//! semantics.
//!
//! The evaluation functions live in the ISA crate (rather than in the CPU
//! model) so that the cycle-level core, the workload golden models and the
//! test-suites all share a single definition of the architecture's
//! arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer ALU operation performed by an [`crate::UopKind::Alu`] micro-op.
///
/// All operations are defined on 64-bit two's-complement values with
/// wrap-around semantics, matching what the workload golden models compute.
///
/// # Examples
///
/// ```
/// use merlin_isa::AluOp;
/// assert_eq!(AluOp::Add.eval(2, 3).value, 5);
/// assert_eq!(AluOp::Div.eval(7, 0).value, 0);
/// assert!(AluOp::Div.eval(7, 0).arithmetic_exception);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Unsigned division; division by zero yields 0 and raises an
    /// architectural arithmetic exception.
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend and raises
    /// an architectural arithmetic exception.
    Rem,
    /// Signed set-less-than: 1 if `a < b` as signed 64-bit, else 0.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// Result of evaluating an [`AluOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The 64-bit result value.
    pub value: u64,
    /// Whether the operation raised a recoverable architectural exception
    /// (division or remainder by zero).  The machine delivers the defined
    /// result above *and* bumps the architectural exception counter; a fault
    /// that introduces extra exceptions without corrupting the output is
    /// classified as DUE by the injection framework.
    pub arithmetic_exception: bool,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operands.
    pub fn eval(self, a: u64, b: u64) -> AluResult {
        let mut exc = false;
        let value = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or_else(|| {
                exc = true;
                0
            }),
            AluOp::Rem => {
                if b == 0 {
                    exc = true;
                    a
                } else {
                    a % b
                }
            }
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Min => (a as i64).min(b as i64) as u64,
            AluOp::Max => (a as i64).max(b as i64) as u64,
        };
        AluResult {
            value,
            arithmetic_exception: exc,
        }
    }

    /// Execution latency of the operation in cycles on the modelled core
    /// (simple ALU ops 1 cycle, multiply 3, divide/remainder 12).
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }

    /// Whether the operation needs the complex-integer functional unit
    /// (multiply/divide) rather than a simple ALU.
    pub fn is_complex(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }

    /// Every ALU operation, for exhaustive tests.
    pub fn all() -> &'static [AluOp] {
        &[
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Min,
            AluOp::Max,
        ]
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Branch condition evaluated between two register operands (or a register
/// and an immediate).
///
/// # Examples
///
/// ```
/// use merlin_isa::Cond;
/// assert!(Cond::Lt.eval(3, 5));
/// assert!(Cond::Lt.eval((-1i64) as u64, 5)); // Lt compares as signed
/// assert!(!Cond::Ltu.eval((-1i64) as u64, 5)); // Ltu compares as unsigned
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two 64-bit operands.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Ge => sa >= sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The negated condition (`Eq` ↔ `Ne`, `Lt` ↔ `Ge`, …).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Every condition, for exhaustive tests.
    pub fn all() -> &'static [Cond] {
        &[
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Ge,
            Cond::Le,
            Cond::Gt,
            Cond::Ltu,
            Cond::Geu,
        ]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1).value, 0);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(AluOp::Sub.eval(0, 1).value, u64::MAX);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(AluOp::Shl.eval(1, 64).value, 1);
        assert_eq!(AluOp::Shl.eval(1, 65).value, 2);
        assert_eq!(AluOp::Shr.eval(4, 66).value, 1);
    }

    #[test]
    fn sar_sign_extends() {
        assert_eq!(AluOp::Sar.eval((-8i64) as u64, 2).value, (-2i64) as u64);
    }

    #[test]
    fn div_by_zero_raises_exception_and_yields_zero() {
        let r = AluOp::Div.eval(123, 0);
        assert_eq!(r.value, 0);
        assert!(r.arithmetic_exception);
        let r = AluOp::Rem.eval(123, 0);
        assert_eq!(r.value, 123);
        assert!(r.arithmetic_exception);
    }

    #[test]
    fn div_rem_normal() {
        assert_eq!(AluOp::Div.eval(17, 5).value, 3);
        assert_eq!(AluOp::Rem.eval(17, 5).value, 2);
        assert!(!AluOp::Div.eval(17, 5).arithmetic_exception);
    }

    #[test]
    fn slt_signed_vs_unsigned() {
        let minus_one = (-1i64) as u64;
        assert_eq!(AluOp::Slt.eval(minus_one, 0).value, 1);
        assert_eq!(AluOp::Sltu.eval(minus_one, 0).value, 0);
    }

    #[test]
    fn min_max_signed() {
        let minus_two = (-2i64) as u64;
        assert_eq!(AluOp::Min.eval(minus_two, 3).value, minus_two);
        assert_eq!(AluOp::Max.eval(minus_two, 3).value, 3);
    }

    #[test]
    fn latencies_positive() {
        for op in AluOp::all() {
            assert!(op.latency() >= 1);
        }
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for &c in Cond::all() {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), ((-3i64) as u64, 4)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn cond_signed_vs_unsigned() {
        let minus_one = (-1i64) as u64;
        assert!(Cond::Lt.eval(minus_one, 1));
        assert!(!Cond::Ltu.eval(minus_one, 1));
        assert!(Cond::Geu.eval(minus_one, 1));
    }
}
