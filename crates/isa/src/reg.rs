//! Architectural register identifiers.
//!
//! The ISA exposes 16 general-purpose 64-bit registers (`r0`..`r15`) to
//! programs.  Two additional *temporary* registers (`t0`, `t1`) are only ever
//! produced by the macro-op → micro-op cracker for intra-instruction
//! communication (e.g. the loaded value of a load-op instruction); they are
//! renamed onto the physical register file exactly like ordinary registers
//! but are never live across macro-instruction boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of program-visible general purpose registers.
pub const NUM_GPRS: usize = 16;

/// Number of cracker-internal temporary registers.
pub const NUM_TEMPS: usize = 2;

/// Total number of architectural register names that participate in renaming.
pub const NUM_ARCH_REGS: usize = NUM_GPRS + NUM_TEMPS;

/// An architectural register name.
///
/// Values `0..16` are the program-visible GPRs; `16` and `17` are the
/// cracker temporaries.  Construct program-visible registers with
/// [`ArchReg::gpr`] and temporaries with [`ArchReg::temp`].
///
/// # Examples
///
/// ```
/// use merlin_isa::ArchReg;
/// let r3 = ArchReg::gpr(3);
/// assert!(r3.is_gpr());
/// assert_eq!(r3.index(), 3);
/// assert_eq!(r3.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates a program-visible general purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_GPRS`.
    pub fn gpr(n: usize) -> Self {
        assert!(n < NUM_GPRS, "GPR index {n} out of range (0..{NUM_GPRS})");
        ArchReg(n as u8)
    }

    /// Creates a cracker-internal temporary register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_TEMPS`.
    pub fn temp(n: usize) -> Self {
        assert!(
            n < NUM_TEMPS,
            "temp index {n} out of range (0..{NUM_TEMPS})"
        );
        ArchReg((NUM_GPRS + n) as u8)
    }

    /// The flat index of this register in `0..NUM_ARCH_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the program-visible registers `r0..r15`.
    pub fn is_gpr(self) -> bool {
        (self.0 as usize) < NUM_GPRS
    }

    /// Returns `true` for the cracker temporaries.
    pub fn is_temp(self) -> bool {
        !self.is_gpr()
    }

    /// Enumerates every architectural register name (GPRs then temps).
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS as u8).map(ArchReg)
    }
}

/// Rebuilds a register from its flat index (decoder internal; the index must
/// already be validated against [`NUM_ARCH_REGS`]).
pub(crate) fn from_index(idx: usize) -> ArchReg {
    debug_assert!(idx < NUM_ARCH_REGS);
    ArchReg(idx as u8)
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_gpr() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "t{}", self.0 as usize - NUM_GPRS)
        }
    }
}

/// Convenience constructor used pervasively by workload kernels: `reg(3)` is
/// `ArchReg::gpr(3)`.
///
/// # Examples
///
/// ```
/// use merlin_isa::{reg, ArchReg};
/// assert_eq!(reg(5), ArchReg::gpr(5));
/// ```
pub fn reg(n: usize) -> ArchReg {
    ArchReg::gpr(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for n in 0..NUM_GPRS {
            let r = ArchReg::gpr(n);
            assert_eq!(r.index(), n);
            assert!(r.is_gpr());
            assert!(!r.is_temp());
        }
    }

    #[test]
    fn temp_roundtrip() {
        for n in 0..NUM_TEMPS {
            let r = ArchReg::temp(n);
            assert_eq!(r.index(), NUM_GPRS + n);
            assert!(r.is_temp());
        }
    }

    #[test]
    #[should_panic]
    fn gpr_out_of_range_panics() {
        let _ = ArchReg::gpr(NUM_GPRS);
    }

    #[test]
    #[should_panic]
    fn temp_out_of_range_panics() {
        let _ = ArchReg::temp(NUM_TEMPS);
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::gpr(0).to_string(), "r0");
        assert_eq!(ArchReg::gpr(15).to_string(), "r15");
        assert_eq!(ArchReg::temp(0).to_string(), "t0");
        assert_eq!(ArchReg::temp(1).to_string(), "t1");
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<ArchReg> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let mut uniq = regs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), NUM_ARCH_REGS);
    }
}
