//! Executable program images: instruction stream plus initial data memory.

use crate::{Inst, Rip};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base virtual address of the data region.  Addresses below this value are
/// reserved for the (read-only) code region; a committed store that targets
/// the code region triggers a simulator assertion (self-modifying code is
/// unsupported), which is one of the ways injected faults surface as the
/// paper's *Assert* outcome.
pub const DATA_BASE: u64 = 0x1_0000;

/// An initialised data segment copied into memory before execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    /// Start address (absolute, `>= DATA_BASE`).
    pub addr: u64,
    /// Initial bytes.
    pub bytes: Vec<u8>,
}

/// A complete program: instruction stream, initial data image and the amount
/// of data memory it needs.
///
/// Programs are produced by [`crate::ProgramBuilder`] and consumed by the
/// `merlin-cpu` core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Static instruction stream; the instruction pointer (RIP) of an
    /// instruction is its index in this vector.
    pub instructions: Vec<Inst>,
    /// Initialised data segments.
    pub data: Vec<DataSegment>,
    /// Total bytes of data memory the program may touch, starting at
    /// [`DATA_BASE`].  The core sizes its backing memory from this.
    pub data_size: u64,
    /// Entry point (instruction index), normally 0.
    pub entry: Rip,
}

impl Program {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction at `rip`, or `None` if the address is outside the
    /// program text (jumping there is a crash).
    pub fn inst(&self, rip: Rip) -> Option<&Inst> {
        self.instructions.get(rip as usize)
    }

    /// One past the highest data address the program's initialised segments
    /// touch.
    pub fn initialized_end(&self) -> u64 {
        self.data
            .iter()
            .map(|s| s.addr + s.bytes.len() as u64)
            .max()
            .unwrap_or(DATA_BASE)
    }

    /// Renders the full program listing (one instruction per line with its
    /// RIP), useful in failure reports.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, inst) in self.instructions.iter().enumerate() {
            out.push_str(&format!("{i:6}: {inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} instructions, {} data segments, {} data bytes",
            self.instructions.len(),
            self.data.len(),
            self.data_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program() {
        let p = Program {
            instructions: vec![],
            data: vec![],
            data_size: 0,
            entry: 0,
        };
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.inst(0), None);
        assert_eq!(p.initialized_end(), DATA_BASE);
    }

    #[test]
    fn initialized_end_covers_all_segments() {
        let p = Program {
            instructions: vec![Inst::Halt],
            data: vec![
                DataSegment {
                    addr: DATA_BASE,
                    bytes: vec![0; 16],
                },
                DataSegment {
                    addr: DATA_BASE + 0x100,
                    bytes: vec![1, 2, 3],
                },
            ],
            data_size: 0x200,
            entry: 0,
        };
        assert_eq!(p.initialized_end(), DATA_BASE + 0x103);
        assert!(p.listing().contains("halt"));
    }
}
