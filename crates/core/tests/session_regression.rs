//! The API-redesign regression test: one session runs representative
//! injection, the comprehensive baseline and the post-ACE baseline while
//! building its golden run exactly once — and every outcome is
//! byte-identical to the pre-redesign free-function path over the same
//! fault list.  Lives next to the deprecated shims (this crate and
//! `merlin-inject` define them), so the legacy calls stay inside the
//! defining layer.

#![allow(deprecated)]

use merlin_ace::AceAnalysis;
use merlin_core::{
    relyzer_reduce, run_comprehensive, run_merlin_with_faults, run_post_ace_baseline, run_relyzer,
    MerlinConfig, SessionMethodology,
};
use merlin_cpu::{CheckpointPolicy, CpuConfig, Structure};
use merlin_inject::{run_golden_checkpointed, Session};
use merlin_workloads::workload_by_name;

#[test]
fn session_outcomes_are_byte_identical_to_the_legacy_path() {
    let w = workload_by_name("stringsearch").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(64).with_store_queue(16);
    let policy = CheckpointPolicy::default();
    let structure = Structure::RegisterFile;

    // --- Session path: representative + comprehensive + post-ACE over one
    // lazily built golden run.
    let session = Session::builder(&w.program, &cfg)
        .checkpoints(policy)
        .max_cycles(100_000_000)
        .threads(4)
        .build()
        .unwrap();
    let faults = session.fault_list(structure, 300, 11).unwrap();
    let merlin = session.merlin_with_faults(structure, &faults).unwrap();
    let comprehensive = session.comprehensive(&faults).unwrap();
    let post_ace = session.post_ace_baseline(&merlin.reduction).unwrap();
    assert_eq!(
        session.golden_builds(),
        1,
        "three phases must share one golden simulation"
    );

    // --- Legacy path: the deprecated free functions, re-threading
    // (program, cfg, golden, threads) by hand.
    let golden = run_golden_checkpointed(&w.program, &cfg, 100_000_000, &policy).unwrap();
    assert_eq!(golden.result, session.golden().unwrap().result);
    assert_eq!(
        golden.timeout_cycles,
        session.golden().unwrap().timeout_cycles
    );

    let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
    let merlin_cfg = MerlinConfig {
        threads: 4,
        max_cycles: 100_000_000,
        seed: 11,
        checkpoints: policy,
    };
    let legacy_merlin = run_merlin_with_faults(
        &w.program,
        &cfg,
        structure,
        &ace,
        &faults,
        &golden,
        &merlin_cfg,
    )
    .unwrap();
    assert_eq!(merlin.outcomes, legacy_merlin.outcomes);
    assert_eq!(
        merlin.report.classification,
        legacy_merlin.report.classification
    );
    assert_eq!(
        merlin.report.post_ace_classification,
        legacy_merlin.report.post_ace_classification
    );

    let legacy_comprehensive = run_comprehensive(&w.program, &cfg, &golden, &faults, 4);
    assert_eq!(comprehensive.outcomes, legacy_comprehensive.outcomes);
    assert_eq!(
        comprehensive.classification,
        legacy_comprehensive.classification
    );

    let legacy_post_ace =
        run_post_ace_baseline(&w.program, &cfg, &golden, &legacy_merlin.reduction, 4);
    assert_eq!(post_ace.outcomes, legacy_post_ace.outcomes);

    // Relyzer too, for completeness of the phase set.
    let reduction = relyzer_reduce(&faults, ace.structure(structure));
    let (session_cls, session_inj) = session.relyzer(&reduction).unwrap();
    let (legacy_cls, legacy_inj) = run_relyzer(&w.program, &cfg, &golden, &reduction, 4);
    assert_eq!(session_cls, legacy_cls);
    assert_eq!(session_inj, legacy_inj);
}
