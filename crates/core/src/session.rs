//! Session extension: the full MeRLiN methodology as methods on
//! [`Session`].
//!
//! Every method shares the session's lazily-built golden run and its cached
//! ACE-like analysis ([`SessionAce`]), so running representative injection,
//! the comprehensive baseline, the post-ACE baseline and the Relyzer
//! comparison back to back costs exactly one golden simulation and one
//! profiling run — the once-per-context invariant the free-function API
//! left to caller discipline.
//!
//! # Examples
//!
//! ```no_run
//! use merlin_core::SessionMethodology;
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_inject::Session;
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("qsort").unwrap();
//! let cfg = CpuConfig::default().with_phys_regs(128);
//! let session = Session::builder(&w.program, &cfg)
//!     .max_cycles(100_000_000)
//!     .build()
//!     .unwrap();
//! let campaign = session
//!     .merlin(Structure::RegisterFile, 2_000, 2017)
//!     .unwrap();
//! println!(
//!     "speedup {:.1}x, AVF {:.2}%",
//!     campaign.report.speedup_total,
//!     100.0 * campaign.report.avf()
//! );
//! ```

use crate::campaign::{merlin_over_session, post_ace_fault_list, MerlinCampaign, MerlinError};
use crate::grouping::FaultListReduction;
use crate::relyzer::{relyzer_extrapolate, relyzer_pilots, RelyzerReduction};
use merlin_ace::SessionAce;
use merlin_cpu::{FaultSpec, Structure};
use merlin_inject::{CampaignResult, Classification, Session};

/// Adds the MeRLiN methodology phases to [`Session`].
///
/// All methods share one golden run and one cached ACE-like profile per
/// session; see the `session` module documentation.
pub trait SessionMethodology {
    /// Runs the complete MeRLiN methodology for `structure`: draws a
    /// `fault_count`-fault statistical initial list with `seed`, prunes and
    /// groups it against the session's ACE-like profile, injects only the
    /// representatives and extrapolates.
    ///
    /// # Errors
    ///
    /// Returns [`MerlinError`] if the golden or profiling run cannot be
    /// established.
    fn merlin(
        &self,
        structure: Structure,
        fault_count: usize,
        seed: u64,
    ) -> Result<MerlinCampaign, MerlinError>;

    /// Runs MeRLiN over an explicitly provided initial fault list (used when
    /// the same list must also feed the baselines).
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionMethodology::merlin`].
    fn merlin_with_faults(
        &self,
        structure: Structure,
        initial: &[FaultSpec],
    ) -> Result<MerlinCampaign, MerlinError>;

    /// Runs the comprehensive baseline: every fault of `initial` injected
    /// individually (Figure 15's reference).
    ///
    /// # Errors
    ///
    /// Propagates golden-run and fault-validation errors.
    fn comprehensive(&self, initial: &[FaultSpec]) -> Result<CampaignResult, MerlinError>;

    /// Runs the post-ACE baseline: every fault that survived the pruning
    /// step injected individually (the blue bars of Figure 14).
    ///
    /// # Errors
    ///
    /// Propagates golden-run and fault-validation errors.
    fn post_ace_baseline(
        &self,
        reduction: &FaultListReduction,
    ) -> Result<CampaignResult, MerlinError>;

    /// Runs the Relyzer control-equivalence campaign: injects one pilot per
    /// group and extrapolates, returning the classification and the number
    /// of injections performed (the §4.4.4 / Figure 17 comparison).
    ///
    /// # Errors
    ///
    /// Propagates golden-run and fault-validation errors.
    fn relyzer(&self, reduction: &RelyzerReduction)
        -> Result<(Classification, usize), MerlinError>;
}

impl SessionMethodology for Session {
    fn merlin(
        &self,
        structure: Structure,
        fault_count: usize,
        seed: u64,
    ) -> Result<MerlinCampaign, MerlinError> {
        let initial = self.fault_list(structure, fault_count, seed)?;
        self.merlin_with_faults(structure, &initial)
    }

    fn merlin_with_faults(
        &self,
        structure: Structure,
        initial: &[FaultSpec],
    ) -> Result<MerlinCampaign, MerlinError> {
        let ace = self.ace_profile()?;
        merlin_over_session(self, structure, &ace, initial)
    }

    fn comprehensive(&self, initial: &[FaultSpec]) -> Result<CampaignResult, MerlinError> {
        Ok(self.campaign(initial)?)
    }

    fn post_ace_baseline(
        &self,
        reduction: &FaultListReduction,
    ) -> Result<CampaignResult, MerlinError> {
        Ok(self.campaign(&post_ace_fault_list(reduction))?)
    }

    fn relyzer(
        &self,
        reduction: &RelyzerReduction,
    ) -> Result<(Classification, usize), MerlinError> {
        let pilots = relyzer_pilots(reduction);
        let result = self.campaign(&pilots)?;
        Ok((relyzer_extrapolate(reduction, &result), pilots.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::reduce_fault_list;
    use crate::relyzer::relyzer_reduce;
    use merlin_cpu::CpuConfig;
    use merlin_workloads::workload_by_name;

    fn small_session(name: &str) -> Session {
        let w = workload_by_name(name).unwrap();
        let cfg = CpuConfig::default().with_phys_regs(64).with_store_queue(16);
        Session::builder(&w.program, &cfg)
            .max_cycles(50_000_000)
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn all_phases_share_one_golden_run() {
        let session = small_session("stringsearch");
        let initial = session
            .fault_list(Structure::RegisterFile, 300, 11)
            .unwrap();
        let merlin = session
            .merlin_with_faults(Structure::RegisterFile, &initial)
            .unwrap();
        let comprehensive = session.comprehensive(&initial).unwrap();
        let post_ace = session.post_ace_baseline(&merlin.reduction).unwrap();
        let ace = session.ace_profile().unwrap();
        let relyzer_red = relyzer_reduce(&initial, ace.structure(Structure::RegisterFile));
        let (relyzer_cls, injections) = session.relyzer(&relyzer_red).unwrap();

        // Representative + comprehensive + post-ACE + Relyzer: one golden
        // simulation, total.
        assert_eq!(session.golden_builds(), 1);

        // Cross-phase consistency.
        assert_eq!(merlin.report.classification.total() as usize, initial.len());
        assert_eq!(comprehensive.classification.total() as usize, initial.len());
        assert_eq!(
            post_ace.classification.total() as usize,
            merlin.report.post_ace_faults
        );
        assert_eq!(relyzer_cls.total() as usize, initial.len());
        assert!(injections <= initial.len());
        let inaccuracy = merlin
            .report
            .classification
            .max_inaccuracy(&comprehensive.classification);
        assert!(inaccuracy < 8.0, "inaccuracy {inaccuracy:.2}");
    }

    #[test]
    fn merlin_draws_its_own_list_deterministically() {
        let session = small_session("sha");
        let a = session.merlin(Structure::StoreQueue, 200, 9).unwrap();
        let b = session.merlin(Structure::StoreQueue, 200, 9).unwrap();
        assert_eq!(a.initial_faults, b.initial_faults);
        assert_eq!(a.report.classification, b.report.classification);
        assert_eq!(session.golden_builds(), 1);
    }

    #[test]
    fn reduction_is_reusable_across_baselines() {
        let session = small_session("qsort");
        let initial = session.fault_list(Structure::RegisterFile, 200, 3).unwrap();
        let ace = session.ace_profile().unwrap();
        let reduction = reduce_fault_list(&initial, ace.structure(Structure::RegisterFile));
        let post_ace = session.post_ace_baseline(&reduction).unwrap();
        assert_eq!(
            post_ace.classification.total() as usize,
            reduction.post_ace_faults()
        );
    }
}
