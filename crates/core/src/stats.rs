//! Theoretical analysis of MeRLiN's statistical behaviour (§4.4.5).
//!
//! A campaign of `F` independent injections is a binomial experiment; MeRLiN
//! replaces the per-fault outcomes of each group `i` (size `s_i`, per-fault
//! non-masking probability `p_i`) by a single representative whose outcome is
//! extrapolated to the whole group.  The section shows that the AVF estimator
//! keeps the same mean and a variance inflated by at most the group sizes —
//! still orders of magnitude below the mean.  This module reproduces those
//! formulas so the claim can be checked numerically against measured group
//! statistics.

use serde::{Deserialize, Serialize};

/// One group's statistics: its size and its per-fault probability of
/// non-masking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupStat {
    /// Group size `s_i`.
    pub size: u64,
    /// Per-fault non-masking probability `p_i` (estimated from observed
    /// outcomes in evaluation mode, or assumed).
    pub p: f64,
}

/// Mean and variance of the AVF estimator of a comprehensive campaign and of
/// MeRLiN's extrapolated campaign over the same faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvfMoments {
    /// Total faults `F` (including the `m·F` faults pruned as Masked).
    pub total_faults: u64,
    /// Expected AVF of the comprehensive campaign (equals MeRLiN's).
    pub mean: f64,
    /// Variance of the comprehensive campaign's AVF estimator.
    pub variance_comprehensive: f64,
    /// Variance of MeRLiN's AVF estimator.
    pub variance_merlin: f64,
}

impl AvfMoments {
    /// Computes both estimators' moments from the group statistics and the
    /// number of ACE-pruned (guaranteed-masked) faults.
    ///
    /// The comprehensive estimator is `k = Σ_i Σ_j r_j / F`; MeRLiN's is
    /// `k_M = Σ_i s_i·r_i / F` with one Bernoulli draw per group.
    pub fn from_groups(groups: &[GroupStat], pruned_masked: u64) -> AvfMoments {
        let grouped: u64 = groups.iter().map(|g| g.size).sum();
        let total = grouped + pruned_masked;
        if total == 0 {
            return AvfMoments {
                total_faults: 0,
                mean: 0.0,
                variance_comprehensive: 0.0,
                variance_merlin: 0.0,
            };
        }
        let f = total as f64;
        let mean = groups.iter().map(|g| g.size as f64 * g.p).sum::<f64>() / f;
        let variance_comprehensive = groups
            .iter()
            .map(|g| g.size as f64 * g.p * (1.0 - g.p))
            .sum::<f64>()
            / (f * f);
        let variance_merlin = groups
            .iter()
            .map(|g| (g.size as f64) * (g.size as f64) * g.p * (1.0 - g.p))
            .sum::<f64>()
            / (f * f);
        AvfMoments {
            total_faults: total,
            mean,
            variance_comprehensive,
            variance_merlin,
        }
    }

    /// Ratio of MeRLiN's standard deviation to the comprehensive standard
    /// deviation (≥ 1; bounded by the maximum group size's square root).
    pub fn stddev_inflation(&self) -> f64 {
        if self.variance_comprehensive == 0.0 {
            1.0
        } else {
            (self.variance_merlin / self.variance_comprehensive).sqrt()
        }
    }
}

/// Estimates per-group non-masking probabilities from observed outcomes
/// (evaluation mode): `p_i` = non-masked fraction within the group.
pub fn group_stats_from_counts(counts: &[(u64, u64)]) -> Vec<GroupStat> {
    counts
        .iter()
        .map(|&(size, non_masked)| GroupStat {
            size,
            p: if size == 0 {
                0.0
            } else {
                non_masked as f64 / size as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_identical_by_construction() {
        let groups = vec![
            GroupStat { size: 10, p: 0.0 },
            GroupStat { size: 20, p: 1.0 },
            GroupStat { size: 30, p: 0.5 },
        ];
        let m = AvfMoments::from_groups(&groups, 40);
        assert_eq!(m.total_faults, 100);
        // Mean AVF = (0 + 20 + 15) / 100.
        assert!((m.mean - 0.35).abs() < 1e-12);
        // Perfectly homogeneous groups (p = 0 or 1) contribute no variance.
        let only_homogeneous = AvfMoments::from_groups(
            &[
                GroupStat { size: 10, p: 0.0 },
                GroupStat { size: 20, p: 1.0 },
            ],
            0,
        );
        assert_eq!(only_homogeneous.variance_comprehensive, 0.0);
        assert_eq!(only_homogeneous.variance_merlin, 0.0);
        assert_eq!(only_homogeneous.stddev_inflation(), 1.0);
    }

    #[test]
    fn merlin_variance_is_inflated_by_group_size_but_stays_small() {
        // The paper's argument: with group sizes below ~100 and a 60K-fault
        // list, MeRLiN's variance stays 6–8 orders of magnitude below the
        // mean.
        let groups: Vec<GroupStat> = (0..1000)
            .map(|i| GroupStat {
                size: 5 + (i % 40),
                p: if i % 10 == 0 { 0.9 } else { 0.02 },
            })
            .collect();
        let pruned = 40_000u64;
        let m = AvfMoments::from_groups(&groups, pruned);
        assert!(m.variance_merlin >= m.variance_comprehensive);
        let max_size = groups.iter().map(|g| g.size).max().unwrap() as f64;
        assert!(m.stddev_inflation() <= max_size.sqrt() + 1e-9);
        // Variance is many orders of magnitude below the mean.
        assert!(m.variance_merlin < m.mean * 1e-3);
        assert!(m.mean > 0.0 && m.mean < 1.0);
    }

    #[test]
    fn group_stats_from_observed_counts() {
        let stats = group_stats_from_counts(&[(10, 5), (4, 0), (0, 0)]);
        assert_eq!(stats.len(), 3);
        assert!((stats[0].p - 0.5).abs() < 1e-12);
        assert_eq!(stats[1].p, 0.0);
        assert_eq!(stats[2].p, 0.0);
    }

    #[test]
    fn empty_input_is_well_behaved() {
        let m = AvfMoments::from_groups(&[], 0);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.total_faults, 0);
    }
}
