//! # merlin-core
//!
//! The MeRLiN methodology (Kaliorakis et al., ISCA 2017): fast and accurate
//! microarchitecture-level reliability assessment by pruning and grouping a
//! statistical fault list so that only a few representative faults per group
//! need to be injected.
//!
//! The pipeline mirrors Figure 2 of the paper:
//!
//! 1. **Preprocessing** — a single instrumented run builds the vulnerable
//!    interval repository (`merlin-ace`) and the statistical initial fault
//!    list is drawn ([`initial_fault_list`]).
//! 2. **Fault-list reduction** — [`reduce_fault_list`] prunes faults outside
//!    every vulnerable interval (guaranteed Masked) and groups the rest by
//!    the (RIP, uPC) of the reading micro-op and by byte position, selecting
//!    representatives from distinct dynamic instances.
//! 3. **Injection campaign** — [`SessionMethodology::merlin`] injects only
//!    the representatives (via `merlin-inject`'s restore-aware campaign
//!    scheduler) and extrapolates each observed effect to its whole group,
//!    yielding the final classification, AVF and FIT together with the
//!    speedup accounting.
//!
//! Evaluation utilities reproduce the paper's analyses: group
//! [`homogeneity`], the comprehensive and post-ACE baselines
//! ([`SessionMethodology::comprehensive`],
//! [`SessionMethodology::post_ace_baseline`]), the Relyzer
//! control-equivalence heuristic ([`relyzer_reduce`],
//! [`SessionMethodology::relyzer`]), FIT/wall-clock/exhaustive-list metrics
//! and the theoretical mean/variance analysis of §4.4.5 ([`AvfMoments`]).
//!
//! # Examples
//!
//! The whole methodology runs as methods on a
//! [`Session`](merlin_inject::Session) (see [`SessionMethodology`]), which
//! builds the checkpointed golden run lazily exactly once and caches the
//! ACE-like profile alongside it:
//!
//! ```no_run
//! use merlin_core::SessionMethodology;
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_inject::Session;
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("qsort").unwrap();
//! let cfg = CpuConfig::default().with_phys_regs(128);
//! let session = Session::builder(&w.program, &cfg)
//!     .max_cycles(100_000_000)
//!     .build()
//!     .unwrap();
//! let campaign = session.merlin(Structure::RegisterFile, 2_000, 2017).unwrap();
//! println!(
//!     "speedup {:.1}x, AVF {:.2}%",
//!     campaign.report.speedup_total,
//!     100.0 * campaign.report.avf()
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod grouping;
mod homogeneity;
mod metrics;
mod relyzer;
mod session;
mod stats;

pub use campaign::{
    classify_truncated, initial_fault_list, ExtrapolatedOutcome, MerlinCampaign, MerlinConfig,
    MerlinError, MerlinReport,
};
pub use grouping::{
    reduce_fault_list, FaultGroup, FaultListReduction, GroupKey, GroupedFault, SubGroup,
};
pub use homogeneity::{homogeneity, Homogeneity};
pub use metrics::{
    fit_rate, merlin_exhaustive_row, relyzer_exhaustive_row, structure_bits, ExhaustiveComparison,
    WallClock, RAW_FIT_PER_BIT,
};
pub use relyzer::{relyzer_reduce, ControlGroup, RelyzerReduction};
pub use session::SessionMethodology;
pub use stats::{group_stats_from_counts, AvfMoments, GroupStat};
