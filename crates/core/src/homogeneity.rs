//! Homogeneity of fault effects within MeRLiN groups (Eq. 1, §4.4.1).
//!
//! Homogeneity is an *evaluation* metric, not part of the methodology: it
//! requires injecting the whole post-ACE fault list (not just the
//! representatives) and measures how often all faults of a group really do
//! behave like their representative.

use crate::grouping::FaultListReduction;
use merlin_cpu::FaultSpec;
use merlin_inject::FaultEffect;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Homogeneity measurements for one reduction + full-injection pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Homogeneity {
    /// Eq. (1) over the six fine-grained classes of Table 2.
    pub fine_grained: f64,
    /// Eq. (1) with all non-masked classes merged (masked vs non-masked).
    pub coarse: f64,
    /// Fraction of groups whose faults all share exactly the same
    /// masked/non-masked outcome (the "perfect homogeneity" percentage at
    /// the bottom of Figure 7's bars).
    pub perfect_group_fraction: f64,
    /// Number of groups measured.
    pub groups: usize,
    /// Total faults measured (post-ACE).
    pub total_faults: usize,
}

/// Computes homogeneity from a reduction and the observed effect of every
/// post-ACE fault (as produced by a full injection of the remaining list).
///
/// Groups here are the *final* groups of the algorithm (byte sub-groups),
/// matching the paper's definition that all faults of a final group are
/// expected to behave identically.
pub fn homogeneity(
    reduction: &FaultListReduction,
    effects: &HashMap<FaultSpec, FaultEffect>,
) -> Homogeneity {
    let mut fine_weighted = 0.0;
    let mut coarse_weighted = 0.0;
    let mut perfect_groups = 0usize;
    let mut groups = 0usize;
    let mut total_faults = 0usize;
    for group in &reduction.groups {
        for sub in &group.subgroups {
            let outcomes: Vec<FaultEffect> = sub
                .faults
                .iter()
                .filter_map(|f| effects.get(&f.fault).copied())
                .collect();
            if outcomes.is_empty() {
                continue;
            }
            groups += 1;
            total_faults += outcomes.len();
            // Fine-grained dominant class.
            let mut counts: HashMap<FaultEffect, usize> = HashMap::new();
            for &e in &outcomes {
                *counts.entry(e).or_insert(0) += 1;
            }
            let dominant_fine = counts.values().copied().max().unwrap_or(0);
            fine_weighted += dominant_fine as f64;
            // Coarse dominant class (masked vs non-masked).
            let masked = outcomes
                .iter()
                .filter(|e| **e == FaultEffect::Masked)
                .count();
            let non_masked = outcomes.len() - masked;
            let dominant_coarse = masked.max(non_masked);
            coarse_weighted += dominant_coarse as f64;
            if masked == 0 || non_masked == 0 {
                perfect_groups += 1;
            }
        }
    }
    if total_faults == 0 {
        return Homogeneity {
            fine_grained: 1.0,
            coarse: 1.0,
            perfect_group_fraction: 1.0,
            groups: 0,
            total_faults: 0,
        };
    }
    Homogeneity {
        fine_grained: fine_weighted / total_faults as f64,
        coarse: coarse_weighted / total_faults as f64,
        perfect_group_fraction: perfect_groups as f64 / groups as f64,
        groups,
        total_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::reduce_fault_list;
    use merlin_ace::{Interval, VulnerableIntervals};
    use merlin_cpu::Structure;

    fn setup() -> (FaultListReduction, Vec<FaultSpec>) {
        let mut repo = VulnerableIntervals::new(Structure::RegisterFile, 8, 1000);
        repo.push(
            0,
            Interval {
                start: 0,
                end: 1000,
                rip: 1,
                upc: 0,
                dyn_instance: 0,
                path_sig: 0,
            },
        );
        repo.push(
            1,
            Interval {
                start: 0,
                end: 1000,
                rip: 2,
                upc: 0,
                dyn_instance: 0,
                path_sig: 0,
            },
        );
        let faults: Vec<FaultSpec> = vec![
            FaultSpec::new(Structure::RegisterFile, 0, 0, 10),
            FaultSpec::new(Structure::RegisterFile, 0, 1, 20),
            FaultSpec::new(Structure::RegisterFile, 0, 2, 30),
            FaultSpec::new(Structure::RegisterFile, 0, 3, 40),
            FaultSpec::new(Structure::RegisterFile, 1, 8, 50),
            FaultSpec::new(Structure::RegisterFile, 1, 9, 60),
        ];
        (reduce_fault_list(&faults, &repo), faults)
    }

    #[test]
    fn perfectly_homogeneous_groups_score_one() {
        let (red, faults) = setup();
        let effects: HashMap<FaultSpec, FaultEffect> = faults
            .iter()
            .map(|&f| {
                let e = if f.entry == 0 {
                    FaultEffect::Sdc
                } else {
                    FaultEffect::Masked
                };
                (f, e)
            })
            .collect();
        let h = homogeneity(&red, &effects);
        assert!((h.fine_grained - 1.0).abs() < 1e-12);
        assert!((h.coarse - 1.0).abs() < 1e-12);
        assert!((h.perfect_group_fraction - 1.0).abs() < 1e-12);
        assert_eq!(h.total_faults, 6);
    }

    #[test]
    fn mixed_groups_reduce_homogeneity() {
        let (red, faults) = setup();
        // Entry-0 byte-0 group (4 faults): 3 SDC + 1 Masked; entry-1 group:
        // 2 Masked.
        let effects: HashMap<FaultSpec, FaultEffect> = faults
            .iter()
            .map(|&f| {
                let e = if f.entry == 0 && f.bit != 3 {
                    FaultEffect::Sdc
                } else {
                    FaultEffect::Masked
                };
                (f, e)
            })
            .collect();
        let h = homogeneity(&red, &effects);
        // Dominant classes: 3 of 4, and 2 of 2 → (3+2)/6.
        assert!((h.fine_grained - 5.0 / 6.0).abs() < 1e-12);
        assert!((h.coarse - 5.0 / 6.0).abs() < 1e-12);
        // One of the two groups is perfect.
        assert!((h.perfect_group_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_reduction_is_trivially_homogeneous() {
        let red = FaultListReduction::default();
        let h = homogeneity(&red, &HashMap::new());
        assert_eq!(h.groups, 0);
        assert_eq!(h.fine_grained, 1.0);
    }
}
