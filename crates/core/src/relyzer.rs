//! The Relyzer control-equivalence heuristic, re-implemented at the
//! microarchitecture level for the §4.4.4 / Figure 17 comparison.
//!
//! Relyzer groups the dynamic instances of a static instruction by the
//! control-flow path (depth 5) that leads to them and injects a single
//! randomly chosen *pilot* per path.  Applied to MeRLiN's post-ACE fault
//! list, the group key becomes (reading RIP, path signature) and — unlike
//! MeRLiN — there is no per-byte splitting and only one pilot per group.

use crate::grouping::GroupedFault;
use merlin_ace::VulnerableIntervals;
use merlin_cpu::FaultSpec;
use merlin_inject::{CampaignResult, Classification, FaultEffect};
use merlin_isa::Rip;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One control-equivalence group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlGroup {
    /// RIP of the reading static instruction.
    pub rip: Rip,
    /// Depth-5 control-flow-path signature.
    pub path_sig: u64,
    /// Faults in the group.
    pub faults: Vec<FaultSpec>,
    /// The single pilot injected for the group.
    pub pilot: FaultSpec,
}

/// The reduction produced by the control-equivalence heuristic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelyzerReduction {
    /// Faults pruned by the ACE-like step (shared with MeRLiN).
    pub ace_masked: Vec<FaultSpec>,
    /// Control-equivalence groups.
    pub groups: Vec<ControlGroup>,
}

impl RelyzerReduction {
    /// Number of injections (one pilot per group).
    pub fn injections(&self) -> usize {
        self.groups.len()
    }

    /// Total faults in the initial list.
    pub fn initial_faults(&self) -> usize {
        self.ace_masked.len() + self.groups.iter().map(|g| g.faults.len()).sum::<usize>()
    }

    /// Final speedup (initial faults / injections).
    pub fn total_speedup(&self) -> f64 {
        let inj = self.injections();
        if inj == 0 {
            self.initial_faults() as f64
        } else {
            self.initial_faults() as f64 / inj as f64
        }
    }

    /// Fraction of groups with more than `threshold` faults that have only a
    /// single pilot — the paper's explanation for Relyzer's inaccuracy
    /// (§4.4.4: 9% of large groups vs less than 2% for MeRLiN).
    pub fn large_single_pilot_fraction(&self, threshold: usize) -> f64 {
        let large: Vec<&ControlGroup> = self
            .groups
            .iter()
            .filter(|g| g.faults.len() > threshold)
            .collect();
        if large.is_empty() {
            0.0
        } else {
            // Every control group has exactly one pilot by construction.
            1.0
        }
    }
}

/// Groups a post-ACE fault list with the control-equivalence heuristic.
pub fn relyzer_reduce(initial: &[FaultSpec], intervals: &VulnerableIntervals) -> RelyzerReduction {
    let mut ace_masked = Vec::new();
    let mut by_key: BTreeMap<(Rip, u64), Vec<GroupedFault>> = BTreeMap::new();
    for &fault in initial {
        match intervals.lookup(fault.entry, fault.cycle) {
            None => ace_masked.push(fault),
            Some(iv) => by_key
                .entry((iv.rip, iv.path_sig))
                .or_default()
                .push(GroupedFault {
                    fault,
                    dyn_instance: iv.dyn_instance,
                    path_sig: iv.path_sig,
                }),
        }
    }
    let groups = by_key
        .into_iter()
        .map(|((rip, path_sig), faults)| {
            // Deterministic "random" pilot: the fault with the smallest
            // (cycle, entry, bit) tuple.
            let pilot = faults
                .iter()
                .map(|f| f.fault)
                .min_by_key(|f| (f.cycle, f.entry, f.bit))
                .expect("group is never empty");
            ControlGroup {
                rip,
                path_sig,
                faults: faults.into_iter().map(|f| f.fault).collect(),
                pilot,
            }
        })
        .collect();
    RelyzerReduction { ace_masked, groups }
}

/// The pilot list of a reduction (one injection per control group).
pub(crate) fn relyzer_pilots(reduction: &RelyzerReduction) -> Vec<FaultSpec> {
    reduction.groups.iter().map(|g| g.pilot).collect()
}

/// Extrapolates the injected pilot outcomes to the whole reduction.
pub(crate) fn relyzer_extrapolate(
    reduction: &RelyzerReduction,
    pilot_result: &CampaignResult,
) -> Classification {
    let effects: HashMap<FaultSpec, FaultEffect> = pilot_result
        .outcomes
        .iter()
        .map(|o| (o.fault, o.effect))
        .collect();
    let mut classification = Classification::default();
    classification.record(FaultEffect::Masked, reduction.ace_masked.len() as u64);
    for g in &reduction.groups {
        let effect = effects[&g.pilot];
        classification.record(effect, g.faults.len() as u64);
    }
    classification
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_ace::Interval;
    use merlin_cpu::Structure;

    fn repo() -> VulnerableIntervals {
        let mut r = VulnerableIntervals::new(Structure::RegisterFile, 8, 1000);
        // Two intervals of the same static reader reached through different
        // control paths, plus one different reader.
        r.push(
            0,
            Interval {
                start: 0,
                end: 100,
                rip: 5,
                upc: 0,
                dyn_instance: 0,
                path_sig: 111,
            },
        );
        r.push(
            0,
            Interval {
                start: 100,
                end: 200,
                rip: 5,
                upc: 0,
                dyn_instance: 1,
                path_sig: 222,
            },
        );
        r.push(
            1,
            Interval {
                start: 0,
                end: 200,
                rip: 9,
                upc: 0,
                dyn_instance: 0,
                path_sig: 111,
            },
        );
        r
    }

    #[test]
    fn groups_by_rip_and_path() {
        let faults = vec![
            FaultSpec::new(Structure::RegisterFile, 0, 0, 50),
            FaultSpec::new(Structure::RegisterFile, 0, 9, 60),
            FaultSpec::new(Structure::RegisterFile, 0, 0, 150),
            FaultSpec::new(Structure::RegisterFile, 1, 0, 50),
            FaultSpec::new(Structure::RegisterFile, 7, 0, 50), // pruned
        ];
        let red = relyzer_reduce(&faults, &repo());
        assert_eq!(red.ace_masked.len(), 1);
        // (rip 5, path 111), (rip 5, path 222), (rip 9, path 111).
        assert_eq!(red.groups.len(), 3);
        assert_eq!(red.injections(), 3);
        assert_eq!(red.initial_faults(), 5);
        // Unlike MeRLiN, faults in different bytes of the same group share a
        // single pilot.
        let g = red
            .groups
            .iter()
            .find(|g| g.rip == 5 && g.path_sig == 111)
            .unwrap();
        assert_eq!(g.faults.len(), 2);
        assert_eq!(g.pilot.cycle, 50);
        assert!((red.total_speedup() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_groups_have_single_pilots() {
        let faults: Vec<FaultSpec> = (0..150)
            .map(|i| FaultSpec::new(Structure::RegisterFile, 0, (i % 64) as u8, 1 + (i % 99)))
            .collect();
        let red = relyzer_reduce(&faults, &repo());
        assert_eq!(red.groups.len(), 1);
        assert_eq!(red.large_single_pilot_fraction(100), 1.0);
        assert_eq!(red.large_single_pilot_fraction(1000), 0.0);
    }
}
