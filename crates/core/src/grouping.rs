//! Phase 2 of MeRLiN: fault-list reduction.
//!
//! Step 1 prunes faults that hit no vulnerable interval (they are Masked by
//! construction) and groups the remaining faults by the (RIP, uPC) of the
//! micro-op that reads the faulty entry at the end of its interval.
//! Step 2 splits each group by the byte position the fault hits within the
//! 64-bit entry and picks one representative per byte sub-group, preferring
//! representatives from dynamic instances of the reading instruction that
//! have not supplied a representative yet (time diversity, §3.2.2).

use merlin_ace::VulnerableIntervals;
use merlin_cpu::FaultSpec;
use merlin_isa::{Rip, Upc};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Identity of a step-1 group: the static micro-op that consumes the faulty
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey {
    /// Instruction pointer of the reading static instruction.
    pub rip: Rip,
    /// Micro program counter of the reading micro-op.
    pub upc: Upc,
}

/// A fault that survived the ACE-like pruning, annotated with the interval
/// that will consume it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupedFault {
    /// The fault itself.
    pub fault: FaultSpec,
    /// Dynamic instance index of the reading instruction.
    pub dyn_instance: u64,
    /// Depth-5 control-flow-path signature at the reading instruction
    /// (used by the Relyzer control-equivalence baseline).
    pub path_sig: u64,
}

/// A step-2 sub-group: all faults of one (RIP, uPC) group that hit the same
/// byte of their entries, together with the selected representative.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubGroup {
    /// Byte position within the 64-bit entry (0–7).
    pub byte: u8,
    /// Every fault in the sub-group (including the representative).
    pub faults: Vec<GroupedFault>,
    /// The single fault that is actually injected.
    pub representative: FaultSpec,
}

impl SubGroup {
    /// Number of faults the representative stands for.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the sub-group is empty (never produced by the reduction).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A step-1 group with its step-2 sub-groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultGroup {
    /// Group identity.
    pub key: GroupKey,
    /// Byte sub-groups (at most 8).
    pub subgroups: Vec<SubGroup>,
}

impl FaultGroup {
    /// Total faults across all sub-groups.
    pub fn total_faults(&self) -> usize {
        self.subgroups.iter().map(|s| s.len()).sum()
    }

    /// Number of representatives (injections) this group needs.
    pub fn representatives(&self) -> usize {
        self.subgroups.len()
    }
}

/// The outcome of MeRLiN's fault-list reduction phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultListReduction {
    /// Faults pruned by the ACE-like step (guaranteed Masked, not injected).
    pub ace_masked: Vec<FaultSpec>,
    /// Groups of the remaining faults.
    pub groups: Vec<FaultGroup>,
}

impl FaultListReduction {
    /// Number of faults in the initial list.
    pub fn initial_faults(&self) -> usize {
        self.ace_masked.len() + self.post_ace_faults()
    }

    /// Number of faults that survived the ACE-like pruning.
    pub fn post_ace_faults(&self) -> usize {
        self.groups.iter().map(|g| g.total_faults()).sum()
    }

    /// The reduced fault list: one representative per byte sub-group.
    pub fn reduced_fault_list(&self) -> Vec<FaultSpec> {
        self.groups
            .iter()
            .flat_map(|g| g.subgroups.iter().map(|s| s.representative))
            .collect()
    }

    /// Number of injections MeRLiN will perform.
    pub fn injections(&self) -> usize {
        self.groups.iter().map(|g| g.representatives()).sum()
    }

    /// Speedup of the ACE-like step alone: initial faults over post-ACE
    /// faults (the blue segments of Figures 8–10).
    pub fn ace_speedup(&self) -> f64 {
        ratio(self.initial_faults(), self.post_ace_faults())
    }

    /// Final speedup: initial faults over actual injections (the full bars
    /// of Figures 8–10 and 12).
    pub fn total_speedup(&self) -> f64 {
        ratio(self.initial_faults(), self.injections())
    }

    /// Average group size (the paper reports 5–40 for its campaigns).
    pub fn mean_group_size(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.post_ace_faults() as f64 / self.groups.len() as f64
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        num as f64
    } else {
        num as f64 / den as f64
    }
}

/// Runs both reduction steps over `initial` using the vulnerable intervals of
/// the target structure.
///
/// Faults whose (entry, cycle) lies outside every vulnerable interval go to
/// [`FaultListReduction::ace_masked`]; the rest are grouped by the interval's
/// (RIP, uPC) and split by byte position, and one representative per byte
/// sub-group is selected from the least-used dynamic instance.
pub fn reduce_fault_list(
    initial: &[FaultSpec],
    intervals: &VulnerableIntervals,
) -> FaultListReduction {
    let mut ace_masked = Vec::new();
    let mut by_key: BTreeMap<GroupKey, Vec<GroupedFault>> = BTreeMap::new();
    for &fault in initial {
        match intervals.lookup(fault.entry, fault.cycle) {
            None => ace_masked.push(fault),
            Some(iv) => {
                by_key
                    .entry(GroupKey {
                        rip: iv.rip,
                        upc: iv.upc,
                    })
                    .or_default()
                    .push(GroupedFault {
                        fault,
                        dyn_instance: iv.dyn_instance,
                        path_sig: iv.path_sig,
                    });
            }
        }
    }
    let mut groups = Vec::with_capacity(by_key.len());
    for (key, faults) in by_key {
        // Step 2: split by byte position.
        let mut by_byte: BTreeMap<u8, Vec<GroupedFault>> = BTreeMap::new();
        for f in faults {
            by_byte.entry(f.fault.byte()).or_default().push(f);
        }
        // Representative selection with time diversity: prefer dynamic
        // instances not already used by another byte sub-group of this group.
        let mut used_instances: HashMap<u64, usize> = HashMap::new();
        let mut subgroups = Vec::with_capacity(by_byte.len());
        for (byte, subfaults) in by_byte {
            let representative = subfaults
                .iter()
                .min_by_key(|f| {
                    (
                        used_instances.get(&f.dyn_instance).copied().unwrap_or(0),
                        f.fault.cycle,
                        f.fault.entry,
                        f.fault.bit,
                    )
                })
                .expect("sub-group is never empty")
                .fault;
            let chosen_instance = subfaults
                .iter()
                .find(|f| f.fault == representative)
                .expect("representative comes from the sub-group")
                .dyn_instance;
            *used_instances.entry(chosen_instance).or_insert(0) += 1;
            subgroups.push(SubGroup {
                byte,
                faults: subfaults,
                representative,
            });
        }
        groups.push(FaultGroup { key, subgroups });
    }
    FaultListReduction { ace_masked, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_ace::{Interval, VulnerableIntervals};
    use merlin_cpu::Structure;

    fn repo_with_intervals() -> VulnerableIntervals {
        let mut r = VulnerableIntervals::new(Structure::RegisterFile, 16, 1000);
        // Entry 1: two intervals read by the same static micro-op (rip 7,
        // upc 0) in different dynamic instances, and one read by rip 9.
        r.push(
            1,
            Interval {
                start: 10,
                end: 100,
                rip: 7,
                upc: 0,
                dyn_instance: 0,
                path_sig: 11,
            },
        );
        r.push(
            1,
            Interval {
                start: 100,
                end: 200,
                rip: 7,
                upc: 0,
                dyn_instance: 1,
                path_sig: 12,
            },
        );
        r.push(
            1,
            Interval {
                start: 300,
                end: 400,
                rip: 9,
                upc: 1,
                dyn_instance: 0,
                path_sig: 13,
            },
        );
        // Entry 2: one interval read by rip 7 upc 0 again.
        r.push(
            2,
            Interval {
                start: 50,
                end: 150,
                rip: 7,
                upc: 0,
                dyn_instance: 2,
                path_sig: 14,
            },
        );
        r
    }

    fn fault(entry: usize, bit: u8, cycle: u64) -> FaultSpec {
        FaultSpec::new(Structure::RegisterFile, entry, bit, cycle)
    }

    #[test]
    fn faults_outside_intervals_are_pruned() {
        let repo = repo_with_intervals();
        let initial = vec![fault(1, 0, 5), fault(1, 0, 250), fault(3, 0, 50)];
        let red = reduce_fault_list(&initial, &repo);
        assert_eq!(red.ace_masked.len(), 3);
        assert_eq!(red.groups.len(), 0);
        assert_eq!(red.injections(), 0);
        assert_eq!(red.initial_faults(), 3);
    }

    #[test]
    fn grouping_by_rip_upc_and_byte() {
        let repo = repo_with_intervals();
        let initial = vec![
            // Same reader (7,0), same byte 0, three different sites/instances.
            fault(1, 3, 50),
            fault(1, 5, 150),
            fault(2, 2, 60),
            // Same reader (7,0), byte 7.
            fault(1, 60, 80),
            // Different reader (9,1).
            fault(1, 1, 350),
            // Pruned.
            fault(1, 0, 999),
        ];
        let red = reduce_fault_list(&initial, &repo);
        assert_eq!(red.ace_masked.len(), 1);
        assert_eq!(red.groups.len(), 2);
        assert_eq!(red.post_ace_faults(), 5);
        let g7 = red
            .groups
            .iter()
            .find(|g| g.key == GroupKey { rip: 7, upc: 0 })
            .unwrap();
        assert_eq!(g7.total_faults(), 4);
        assert_eq!(g7.representatives(), 2); // bytes 0 and 7
        let g9 = red
            .groups
            .iter()
            .find(|g| g.key == GroupKey { rip: 9, upc: 1 })
            .unwrap();
        assert_eq!(g9.total_faults(), 1);
        assert_eq!(g9.representatives(), 1);
        assert_eq!(red.injections(), 3);
        assert!((red.total_speedup() - 2.0).abs() < 1e-12);
        assert!((red.ace_speedup() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn representatives_prefer_distinct_dynamic_instances() {
        let repo = repo_with_intervals();
        // Byte 0 faults from instance 0 (cycle 50) and instance 1 (cycle
        // 150); byte 1 faults from instance 0 only.  After byte 0 picks
        // instance 0 (lowest cycle among unused), byte 1 must still pick
        // instance 0 (its only choice), but byte 2 (instances 0 and 1)
        // should then prefer instance 1.
        let initial = vec![
            fault(1, 0, 50),   // byte 0, inst 0
            fault(1, 1, 150),  // byte 0, inst 1
            fault(1, 8, 60),   // byte 1, inst 0
            fault(1, 16, 70),  // byte 2, inst 0
            fault(1, 17, 160), // byte 2, inst 1
        ];
        let red = reduce_fault_list(&initial, &repo);
        assert_eq!(red.groups.len(), 1);
        let g = &red.groups[0];
        assert_eq!(g.subgroups.len(), 3);
        let rep_bytes: Vec<(u8, u64)> = g
            .subgroups
            .iter()
            .map(|s| (s.byte, s.representative.cycle))
            .collect();
        // byte 0 takes the instance-0 fault (cycle 50); byte 1 has only the
        // instance-0 fault; byte 2 then prefers the instance-1 fault (160).
        assert_eq!(rep_bytes, vec![(0, 50), (1, 60), (2, 160)]);
    }

    #[test]
    fn every_fault_lands_in_exactly_one_place() {
        let repo = repo_with_intervals();
        let initial: Vec<FaultSpec> = (0..200)
            .map(|i| fault((i % 4) as usize, (i % 64) as u8, (i * 7 % 1000) as u64))
            .collect();
        let red = reduce_fault_list(&initial, &repo);
        assert_eq!(red.initial_faults(), initial.len());
        // Representatives belong to their own sub-groups.
        for g in &red.groups {
            for s in &g.subgroups {
                assert!(s.faults.iter().any(|f| f.fault == s.representative));
                for f in &s.faults {
                    assert_eq!(f.fault.byte(), s.byte);
                }
            }
        }
        // Reduced list size equals the number of sub-groups.
        assert_eq!(red.reduced_fault_list().len(), red.injections());
    }
}
