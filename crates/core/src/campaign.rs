//! End-to-end MeRLiN campaigns: preprocessing (ACE-like profiling + initial
//! fault list), fault-list reduction, injection of the representatives and
//! extrapolation of their effects to the whole group, plus the comprehensive
//! baseline campaign used for accuracy comparisons.

use crate::grouping::{reduce_fault_list, FaultListReduction};
use merlin_ace::{AceAnalysis, AceError};
use merlin_cpu::{CheckpointPolicy, CpuConfig, FaultSpec, Structure};
use merlin_inject::{
    generate_fault_list, BatchingPolicy, CampaignError, Classification, FaultEffect, FaultInjector,
    GoldenRun, Session, SessionBuilder,
};
use merlin_isa::Program;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunables of a MeRLiN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MerlinConfig {
    /// Worker threads for the injection phase.
    pub threads: usize,
    /// Cycle budget for the golden/profiling run.
    pub max_cycles: u64,
    /// Seed for the statistical fault sampling.
    pub seed: u64,
    /// Checkpointing of the golden run: every campaign phase (representative
    /// injection, comprehensive and post-ACE baselines) restores these
    /// checkpoints instead of re-simulating from cycle 0.
    pub checkpoints: CheckpointPolicy,
    /// Per-range campaign engine.  The harness defaults to fork-on-divergence
    /// batching — one golden replay per checkpoint range instead of one
    /// fault-free prefix replay per fault — because outcomes are
    /// byte-identical to [`BatchingPolicy::PerFault`] (the raw session
    /// default, kept as the differential oracle).
    pub batching: BatchingPolicy,
}

impl Default for MerlinConfig {
    fn default() -> Self {
        MerlinConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_cycles: 200_000_000,
            seed: 0x4D45_524C, // "MERL"
            checkpoints: CheckpointPolicy::default(),
            batching: BatchingPolicy::Batched,
        }
    }
}

impl MerlinConfig {
    /// A session builder carrying this configuration's execution knobs
    /// (checkpoint policy, cycle budget, thread count).
    pub fn session_builder(&self, program: &Program, cfg: &CpuConfig) -> SessionBuilder {
        Session::builder(program, cfg)
            .checkpoints(self.checkpoints)
            .max_cycles(self.max_cycles)
            .threads(self.threads)
            .batching(self.batching)
    }
}

/// Per-fault effect after extrapolation (every fault of a sub-group inherits
/// its representative's observed effect; ACE-pruned faults are Masked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtrapolatedOutcome {
    /// The fault.
    pub fault: FaultSpec,
    /// Its (extrapolated or directly observed) effect.
    pub effect: FaultEffect,
    /// `true` if this fault was actually injected (it was a representative).
    pub injected: bool,
}

/// Result of one MeRLiN campaign on one (benchmark, structure, configuration)
/// triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MerlinReport {
    /// Target structure.
    pub structure: Structure,
    /// Size of the initial statistical fault list.
    pub initial_faults: usize,
    /// Faults pruned by the static liveness analysis before any dynamic
    /// profile was consulted (register-file faults into identity entries of
    /// architectural registers the program text never mentions).
    #[serde(default)]
    pub static_pruned: usize,
    /// Faults pruned by the ACE-like step.
    pub ace_pruned: usize,
    /// Faults remaining after the ACE-like step.
    pub post_ace_faults: usize,
    /// Number of (RIP, uPC) groups.
    pub groups: usize,
    /// Number of injections actually performed (representatives).
    pub injections: usize,
    /// Average step-1 group size.
    pub mean_group_size: f64,
    /// Extrapolated classification over the full initial list.
    pub classification: Classification,
    /// Classification restricted to the post-ACE fault list (used by the
    /// Figure 14 comparison).
    pub post_ace_classification: Classification,
    /// Per-representative observed effects keyed by sub-group index order.
    pub representative_effects: Vec<FaultEffect>,
    /// The ACE-like AVF upper bound of the structure.
    pub ace_avf: f64,
    /// Golden-run cycle count.
    pub golden_cycles: u64,
    /// Speedup of the ACE-like step alone.
    pub speedup_ace: f64,
    /// Final speedup (initial faults / injections).
    pub speedup_total: f64,
}

impl MerlinReport {
    /// The AVF MeRLiN reports (non-masked fraction of the initial list).
    pub fn avf(&self) -> f64 {
        self.classification.avf()
    }
}

/// A full MeRLiN campaign plus everything needed to evaluate it against the
/// baselines (the reduction itself and the golden run are kept).
#[derive(Debug, Clone)]
pub struct MerlinCampaign {
    /// The target structure.
    pub structure: Structure,
    /// The reduction produced in phase 2.
    pub reduction: FaultListReduction,
    /// The golden run used for classification.
    pub golden: GoldenRun,
    /// The initial statistical fault list.
    pub initial_faults: Vec<FaultSpec>,
    /// Extrapolated outcome for every initial fault.
    pub outcomes: Vec<ExtrapolatedOutcome>,
    /// The report summarising the campaign.
    pub report: MerlinReport,
}

/// Errors from MeRLiN campaign execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MerlinError {
    /// The underlying golden/profiling run failed.
    Preprocessing(String),
}

impl std::fmt::Display for MerlinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MerlinError::Preprocessing(e) => write!(f, "MeRLiN preprocessing failed: {e}"),
        }
    }
}

impl std::error::Error for MerlinError {}

impl From<CampaignError> for MerlinError {
    fn from(e: CampaignError) -> Self {
        MerlinError::Preprocessing(e.to_string())
    }
}

impl From<AceError> for MerlinError {
    fn from(e: AceError) -> Self {
        MerlinError::Preprocessing(e.to_string())
    }
}

/// Generates the initial statistical fault list for `structure` given the
/// golden execution length (phase 1, task 2 of the paper).
pub fn initial_fault_list(
    cfg: &CpuConfig,
    structure: Structure,
    golden_cycles: u64,
    count: usize,
    seed: u64,
) -> Vec<FaultSpec> {
    generate_fault_list(
        structure,
        cfg.structure_entries(structure),
        golden_cycles,
        count,
        seed,
    )
}

/// The methodology proper, over a session: reduce, inject representatives,
/// extrapolate.  The engine behind
/// [`SessionMethodology`](crate::SessionMethodology).
pub(crate) fn merlin_over_session(
    session: &Session,
    structure: Structure,
    ace: &AceAnalysis,
    initial: &[FaultSpec],
) -> Result<MerlinCampaign, MerlinError> {
    let golden = session.golden()?;
    let intervals = ace.structure(structure);

    // Phase 2a: the static prune.  A register-file fault into the identity
    // entry of an architectural register the program text never mentions is
    // provably Masked, so it never reaches the dynamic ACE-like step.
    let analysis = session.analysis();
    let (static_dead, dynamic): (Vec<FaultSpec>, Vec<FaultSpec>) =
        initial.iter().copied().partition(|f| {
            f.structure == Structure::RegisterFile && analysis.rf_entry_statically_dead(f.entry)
        });
    let reduction = reduce_fault_list(&dynamic, intervals);

    // Phase 3: inject only the representatives.
    let representatives = reduction.reduced_fault_list();
    let rep_result = session.campaign(&representatives)?;
    let rep_effects: HashMap<FaultSpec, FaultEffect> = rep_result
        .outcomes
        .iter()
        .map(|o| (o.fault, o.effect))
        .collect();

    // Extrapolate: pruned faults are Masked, grouped faults inherit their
    // representative's effect.
    let mut outcomes = Vec::with_capacity(initial.len());
    let mut classification = Classification::default();
    let mut post_ace_classification = Classification::default();
    for &fault in &static_dead {
        classification.record(FaultEffect::Masked, 1);
        outcomes.push(ExtrapolatedOutcome {
            fault,
            effect: FaultEffect::Masked,
            injected: false,
        });
    }
    for &fault in &reduction.ace_masked {
        classification.record(FaultEffect::Masked, 1);
        outcomes.push(ExtrapolatedOutcome {
            fault,
            effect: FaultEffect::Masked,
            injected: false,
        });
    }
    let mut representative_effects = Vec::new();
    for group in &reduction.groups {
        for sub in &group.subgroups {
            let effect = rep_effects[&sub.representative];
            representative_effects.push(effect);
            for f in &sub.faults {
                classification.record(effect, 1);
                post_ace_classification.record(effect, 1);
                outcomes.push(ExtrapolatedOutcome {
                    fault: f.fault,
                    effect,
                    injected: f.fault == sub.representative,
                });
            }
        }
    }

    // Speedups over the *full* initial list: the static prune removes
    // faults before the ACE-like step, so both numerators start from
    // `initial.len()`, not from the dynamic remainder.
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            num as f64
        } else {
            num as f64 / den as f64
        }
    };
    let report = MerlinReport {
        structure,
        initial_faults: initial.len(),
        static_pruned: static_dead.len(),
        ace_pruned: reduction.ace_masked.len(),
        post_ace_faults: reduction.post_ace_faults(),
        groups: reduction.groups.len(),
        injections: reduction.injections(),
        mean_group_size: reduction.mean_group_size(),
        classification,
        post_ace_classification,
        representative_effects,
        ace_avf: intervals.ace_avf(),
        golden_cycles: golden.result.cycles,
        speedup_ace: ratio(initial.len(), reduction.post_ace_faults()),
        speedup_total: ratio(initial.len(), reduction.injections()),
    };
    Ok(MerlinCampaign {
        structure,
        reduction,
        golden: golden.clone(),
        initial_faults: initial.to_vec(),
        outcomes,
        report,
    })
}

/// Flattens a reduction back into the post-ACE fault list (every fault that
/// survived the pruning step).
pub(crate) fn post_ace_fault_list(reduction: &FaultListReduction) -> Vec<FaultSpec> {
    reduction
        .groups
        .iter()
        .flat_map(|g| {
            g.subgroups
                .iter()
                .flat_map(|s| s.faults.iter().map(|f| f.fault))
        })
        .collect()
}

/// Truncated-run classification (§4.4.3.4, Table 4): the faulty run is
/// compared against the golden run at the end of a truncated interval; faults
/// that are still architecturally live are `Unknown`.
///
/// Takes a reusable [`FaultInjector`] (build one per (program, config,
/// golden) triple) so callers classifying whole fault lists pay no per-fault
/// program clone and get checkpoint-restore suffix simulation whenever the
/// injector's golden run carries a store.
pub fn classify_truncated(
    injector: &mut FaultInjector,
    ace: &AceAnalysis,
    structure: Structure,
    fault: FaultSpec,
    horizon_cycles: u64,
) -> merlin_inject::TruncatedEffect {
    use merlin_inject::TruncatedEffect;
    let intervals = ace.structure(structure);
    // A fault outside every vulnerable interval that starts before the
    // horizon is masked within the interval.
    let covering = intervals.lookup(fault.entry, fault.cycle);
    if fault.cycle > horizon_cycles {
        return TruncatedEffect::Masked;
    }
    match injector.run(fault) {
        FaultEffect::Crash => TruncatedEffect::Crash,
        FaultEffect::Assert => TruncatedEffect::Assert,
        FaultEffect::Due => TruncatedEffect::Due,
        FaultEffect::Masked => {
            if covering.is_none() {
                TruncatedEffect::Masked
            } else if covering.map(|iv| iv.end <= horizon_cycles).unwrap_or(true) {
                // Consumed within the interval without architectural effect.
                TruncatedEffect::Masked
            } else {
                TruncatedEffect::Unknown
            }
        }
        // SDC or Timeout manifest only after the truncation horizon in the
        // paper's setting; before the horizon their eventual fate is unknown.
        FaultEffect::Sdc | FaultEffect::Timeout => TruncatedEffect::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionMethodology;
    use merlin_ace::SessionAce;
    use merlin_inject::TruncatedEffect;
    use merlin_workloads::workload_by_name;

    fn small_cfg() -> CpuConfig {
        CpuConfig::default().with_phys_regs(64).with_store_queue(16)
    }

    fn small_session(name: &str) -> Session {
        let w = workload_by_name(name).unwrap();
        Session::builder(&w.program, &small_cfg())
            .max_cycles(50_000_000)
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn merlin_campaign_accounts_for_every_fault() {
        let session = small_session("stringsearch");
        let campaign = session.merlin(Structure::RegisterFile, 400, 7).unwrap();
        let r = &campaign.report;
        assert_eq!(r.initial_faults, 400);
        assert_eq!(r.static_pruned + r.ace_pruned + r.post_ace_faults, 400);
        assert!(
            r.static_pruned > 0,
            "the static prune found no dead register-file site in 400 samples"
        );
        assert_eq!(r.classification.total(), 400);
        assert_eq!(campaign.outcomes.len(), 400);
        assert!(r.injections <= r.post_ace_faults);
        assert!(r.injections >= r.groups);
        assert!(r.speedup_total >= r.speedup_ace);
        assert!(r.speedup_ace >= 1.0);
        // Extrapolation bookkeeping: injected representatives equal the
        // reported injection count.
        assert_eq!(
            campaign.outcomes.iter().filter(|o| o.injected).count(),
            r.injections
        );
    }

    #[test]
    fn merlin_matches_comprehensive_campaign_closely() {
        let session = small_session("sha");
        let initial = session
            .fault_list(Structure::RegisterFile, 500, 13)
            .unwrap();
        let merlin = session
            .merlin_with_faults(Structure::RegisterFile, &initial)
            .unwrap();
        let comprehensive = session.comprehensive(&initial).unwrap();
        let inaccuracy = merlin
            .report
            .classification
            .max_inaccuracy(&comprehensive.classification);
        assert!(
            inaccuracy < 6.0,
            "MeRLiN vs comprehensive inaccuracy {inaccuracy:.2} percentile units\nmerlin: {}\nbaseline: {}",
            merlin.report.classification,
            comprehensive.classification
        );
        // And it must be much cheaper.
        assert!(merlin.report.injections * 3 < initial.len());
        // Both phases shared one golden simulation.
        assert_eq!(session.golden_builds(), 1);
    }

    #[test]
    fn store_queue_campaign_runs() {
        let session = small_session("qsort");
        let campaign = session.merlin(Structure::StoreQueue, 300, 7).unwrap();
        assert_eq!(campaign.report.classification.total(), 300);
        assert!(campaign.report.speedup_total > 1.0);
    }

    #[test]
    fn merlin_config_session_builder_carries_the_execution_knobs() {
        // The builder bridge must thread every knob of the configuration
        // through to the session it produces.
        let w = workload_by_name("stringsearch").unwrap();
        let merlin_cfg = MerlinConfig {
            threads: 3,
            max_cycles: 50_000_000,
            seed: 7,
            ..Default::default()
        };
        let session = merlin_cfg
            .session_builder(&w.program, &small_cfg())
            .build()
            .unwrap();
        assert_eq!(session.threads(), 3);
        assert_eq!(session.max_cycles(), 50_000_000);
        assert_eq!(session.policy(), &merlin_cfg.checkpoints);
    }

    #[test]
    fn classify_truncated_covers_every_branch() {
        let session = small_session("stringsearch");
        let ace = session.ace_profile().unwrap();
        let golden_cycles = session.golden().unwrap().result.cycles;
        let horizon = golden_cycles / 2;
        let mut injector = session.injector().unwrap();
        let faults = session
            .fault_list(Structure::RegisterFile, 300, 23)
            .unwrap();
        let intervals = ace.structure(Structure::RegisterFile);
        let mut seen: HashMap<TruncatedEffect, u64> = HashMap::new();
        for &fault in &faults {
            let effect =
                classify_truncated(&mut injector, &ace, Structure::RegisterFile, fault, horizon);
            *seen.entry(effect).or_default() += 1;
            // Branch contracts, checked per fault:
            if fault.cycle > horizon {
                assert_eq!(effect, TruncatedEffect::Masked, "{fault}: past the horizon");
            }
            let covering = intervals.lookup(fault.entry, fault.cycle);
            if covering.is_none() && fault.cycle <= horizon {
                // ACE-pruned faults inside the horizon are really masked.
                assert_eq!(
                    effect,
                    TruncatedEffect::Masked,
                    "{fault}: outside intervals"
                );
            }
            if effect == TruncatedEffect::Unknown {
                // Unknown requires an interval that outlives the horizon or
                // a fault whose eventual fate (SDC/Timeout) manifests later.
                assert!(fault.cycle <= horizon, "{fault}");
            }
        }
        // The dominant classes must actually occur on a real workload.
        assert!(seen[&TruncatedEffect::Masked] > 0);
        assert!(
            seen.get(&TruncatedEffect::Unknown).copied().unwrap_or(0) > 0,
            "no fault was live across the horizon: {seen:?}"
        );
        // A fault injected after the horizon is masked by definition.
        let late = FaultSpec::new(Structure::RegisterFile, 0, 1, horizon + 1);
        assert_eq!(
            classify_truncated(&mut injector, &ace, Structure::RegisterFile, late, horizon),
            TruncatedEffect::Masked
        );
    }
}
