//! Reliability metrics and cost accounting: FIT rates (Figure 16), wall-clock
//! estimation-time projection (Figure 11) and the exhaustive-fault-list
//! comparison against Relyzer (Table 3).

use merlin_cpu::{CpuConfig, Structure};
use serde::{Deserialize, Serialize};

/// Raw failure rate per bit used by the paper for Figure 16 (0.01 FIT/bit).
pub const RAW_FIT_PER_BIT: f64 = 0.01;

/// Number of fault-injectable storage bits of `structure` under `cfg`.
pub fn structure_bits(cfg: &CpuConfig, structure: Structure) -> u64 {
    match structure {
        Structure::RegisterFile => cfg.register_file_bits(),
        Structure::StoreQueue => cfg.store_queue_bits(),
        Structure::L1DCache => cfg.l1d_bits(),
    }
}

/// Failures-in-time rate of a structure: `AVF × raw FIT/bit × bits`
/// (Figure 16's metric).
pub fn fit_rate(avf: f64, bits: u64) -> f64 {
    avf * RAW_FIT_PER_BIT * bits as f64
}

/// Wall-clock projection of a sequential injection campaign, mirroring the
/// assumptions of Figure 11 and Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallClock {
    /// Number of injection runs.
    pub runs: u64,
    /// Simulated cycles per run.
    pub cycles_per_run: u64,
    /// Simulator throughput in cycles per second.
    pub cycles_per_second: f64,
}

impl WallClock {
    /// Total seconds of sequential simulation.
    pub fn seconds(&self) -> f64 {
        self.runs as f64 * self.cycles_per_run as f64 / self.cycles_per_second
    }

    /// Total months (30-day months, as the paper plots).
    pub fn months(&self) -> f64 {
        self.seconds() / (30.0 * 24.0 * 3600.0)
    }

    /// Total years.
    pub fn years(&self) -> f64 {
        self.seconds() / (365.0 * 24.0 * 3600.0)
    }
}

/// One row of the Table 3 comparison (method vs exhaustive fault list).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveComparison {
    /// Size of the exhaustive fault list at the method's abstraction level.
    pub exhaustive_faults: f64,
    /// Faults remaining for injection after the method's pruning.
    pub remaining_faults: f64,
    /// Gain: exhaustive / remaining.
    pub gain: f64,
    /// Time to inject the exhaustive list (years).
    pub exhaustive_years: f64,
    /// Time to inject the remaining list (years).
    pub remaining_years: f64,
}

/// Builds the MeRLiN row of Table 3: the exhaustive microarchitectural fault
/// list is every bit of the three structures at every cycle; the remaining
/// faults follow MeRLiN's measured reduction factor.
pub fn merlin_exhaustive_row(
    cfg: &CpuConfig,
    total_cycles: u64,
    measured_reduction_factor: f64,
    microarch_cycles_per_second: f64,
) -> ExhaustiveComparison {
    let bits: u64 = Structure::all()
        .iter()
        .map(|&s| structure_bits(cfg, s))
        .sum();
    let exhaustive = bits as f64 * total_cycles as f64;
    let remaining = exhaustive / measured_reduction_factor;
    let secs_per_run = total_cycles as f64 / microarch_cycles_per_second;
    ExhaustiveComparison {
        exhaustive_faults: exhaustive,
        remaining_faults: remaining,
        gain: measured_reduction_factor,
        exhaustive_years: exhaustive * secs_per_run / (365.0 * 24.0 * 3600.0),
        remaining_years: remaining * secs_per_run / (365.0 * 24.0 * 3600.0),
    }
}

/// Builds the Relyzer row of Table 3: the exhaustive software-level fault
/// list covers the operand bits of every dynamic instruction; Relyzer's
/// published pruning leaves roughly one in 10^5, and software emulation is an
/// order of magnitude faster than cycle-accurate simulation.
pub fn relyzer_exhaustive_row(
    dynamic_instructions: u64,
    operand_bits_per_instruction: u64,
    relyzer_gain: f64,
    emulation_cycles_per_second: f64,
    cycles_per_instruction: f64,
) -> ExhaustiveComparison {
    let exhaustive = dynamic_instructions as f64 * operand_bits_per_instruction as f64;
    let remaining = exhaustive / relyzer_gain;
    let secs_per_run =
        dynamic_instructions as f64 * cycles_per_instruction / emulation_cycles_per_second;
    ExhaustiveComparison {
        exhaustive_faults: exhaustive,
        remaining_faults: remaining,
        gain: relyzer_gain,
        exhaustive_years: exhaustive * secs_per_run / (365.0 * 24.0 * 3600.0),
        remaining_years: remaining * secs_per_run / (365.0 * 24.0 * 3600.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_scales_with_avf_and_bits() {
        let cfg = CpuConfig::default();
        let bits = structure_bits(&cfg, Structure::RegisterFile);
        assert_eq!(bits, 256 * 64);
        let f = fit_rate(0.1, bits);
        assert!((f - 0.1 * 0.01 * 16384.0).abs() < 1e-9);
        assert!(fit_rate(0.0, bits) == 0.0);
        assert!(fit_rate(0.2, bits) > fit_rate(0.1, bits));
    }

    #[test]
    fn wall_clock_projection() {
        // 60,000 runs of 10M cycles at 100K cycles/s = 6e6 seconds ≈ 2.3 months.
        let w = WallClock {
            runs: 60_000,
            cycles_per_run: 10_000_000,
            cycles_per_second: 1e5,
        };
        assert!((w.seconds() - 6e6).abs() < 1.0);
        assert!((w.months() - 6e6 / (30.0 * 24.0 * 3600.0)).abs() < 1e-6);
        assert!(w.years() < w.months());
    }

    #[test]
    fn table3_shapes_hold() {
        // The paper's scenario: 1 billion cycles, Gem5-like throughput of
        // 1e5 cycles/s, MeRLiN reduction of ~1e10, Relyzer gain of 1e5 at
        // software level with 1e6 instr/s emulation.
        let cfg = CpuConfig::default()
            .with_phys_regs(64)
            .with_store_queue(16)
            .with_l1d_kb(32);
        let merlin = merlin_exhaustive_row(&cfg, 1_000_000_000, 1e10, 1e5);
        let relyzer = relyzer_exhaustive_row(1_000_000_000, 100, 1e5, 1e6, 1.0);
        // Exhaustive microarchitectural list is orders of magnitude larger
        // than the software-level list.
        assert!(merlin.exhaustive_faults > relyzer.exhaustive_faults * 10.0);
        // MeRLiN's gain is orders of magnitude larger than Relyzer's.
        assert!(merlin.gain > relyzer.gain * 1e3);
        // And the remaining-fault evaluation time is far smaller despite the
        // slower simulator.
        assert!(merlin.remaining_years < relyzer.remaining_years);
        assert!(merlin.exhaustive_years > 1e6);
    }
}
