//! Offline stand-in for `proptest`.
//!
//! The workspace builds in environments with no crates.io access, so this
//! crate re-implements the proptest API subset the workspace's property tests
//! use: the `Strategy` trait with `prop_map`/`prop_flat_map`/`boxed`, range
//! and tuple strategies, `any::<T>()`, `Just`, `prop::sample::select`,
//! `prop::collection::vec`, `prop::option::of`, the `proptest!` test macro
//! with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from the real proptest, by design:
//!
//! * **No shrinking.**  A failing case reports the generated inputs via the
//!   test's `Debug` formatting in the panic message, unminimised.
//! * **Deterministic.**  Case `i` of test `t` always sees the same inputs
//!   (seeded from a hash of the test path and `i`), so failures reproduce
//!   exactly across runs and machines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// The `prop` namespace (`prop::sample`, `prop::collection`, ...).
pub mod prop {
    /// Strategies that pick from explicit value lists.
    pub mod sample {
        use crate::strategy::{Select, Strategy};

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires at least one value");
            Select(values)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut crate::test_runner::TestRng) -> T {
                let i = rng.below(self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Generates `Vec`s with a length drawn from `len` and elements drawn
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec length range must be non-empty");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut crate::test_runner::TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// Generates `None` about a quarter of the time, otherwise `Some` of
        /// the inner strategy.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut crate::test_runner::TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.new_value(rng))
                }
            }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
