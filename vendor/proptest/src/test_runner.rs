//! Deterministic test RNG, configuration and the `proptest!`/`prop_assert*`
//! macros.

use std::fmt;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: the workspace's property tests
        // drive a cycle-level simulator, and there is no shrinking to amortise.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case RNG (xoshiro256** seeded from a hash of the test
/// path and the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Defines property tests.  Mirrors proptest's macro for the syntax subset
/// the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(&($strategy), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!`-style equality check.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// `prop_assert!`-style inequality check.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
