//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`prop::sample::select`](crate::prop::sample::select).
pub struct Select<T>(pub(crate) Vec<T>);

/// Strategy produced by
/// [`prop::collection::vec`](crate::prop::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

/// Strategy produced by [`prop::option::of`](crate::prop::option::of).
pub struct OptionStrategy<S>(pub(crate) S);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let unit = rng.next_u64() as f64 / u64::MAX as f64;
        lo + unit * (hi - lo)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Uniformly picks one of several strategies with the same value type.
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].new_value(rng)
    }
}

/// `prop_oneof![a, b, c]` — uniformly picks one of the argument strategies
/// each time a value is drawn.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
