//! Offline stand-in for `serde`.
//!
//! The workspace builds in environments with no crates.io access.  The
//! simulator types carry `#[derive(Serialize, Deserialize)]` to declare their
//! on-disk format intent, but nothing in the workspace serialises values yet,
//! so marker traits are sufficient.  Swapping this stub for the real serde is
//! a one-line change in the workspace `Cargo.toml`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
