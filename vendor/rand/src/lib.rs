//! Offline stand-in for `rand` 0.8.
//!
//! The workspace builds in environments with no crates.io access, so this
//! crate re-implements exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast and statistically solid for fault-sampling purposes.  Streams differ
//! from the real `StdRng` (ChaCha12), which is fine: every consumer in the
//! workspace only requires determinism for a fixed seed, not any particular
//! stream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core infallible generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from all their bit patterns
/// (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (stand-in for `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Multiply-free uniform draw from `[0, span)` via 128-bit widening, with the
/// bias left in (≤ 2⁻⁶⁴ per draw — irrelevant at campaign scales).
#[inline]
fn widening_mul(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + widening_mul(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + widening_mul(rng.next_u64(), span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(2017);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.gen_range(0usize..128) < 32).count();
        // Expected 2500; allow generous slack.
        assert!((2000..=3000).contains(&low), "got {low}");
    }
}
