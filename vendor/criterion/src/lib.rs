//! Offline stand-in for `criterion`.
//!
//! The workspace builds in environments with no crates.io access, so this
//! crate re-implements the criterion API subset the benches use: benchmark
//! groups with `sample_size`/`warm_up_time`/`measurement_time`/`throughput`,
//! `bench_function` with `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: after a warm-up phase, each sample times a batch of
//! iterations and the report prints the minimum, mean and maximum per-iteration
//! time (the same `time: [low mid high]` shape criterion prints, so existing
//! log scrapers keep working).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample: Duration::ZERO,
            iters: 0,
        };
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            f(&mut b);
            if b.iters == 0 || warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            b.sample = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.sample.as_secs_f64() / b.iters as f64);
            }
            if budget_start.elapsed() >= self.measurement_time && samples.len() >= 2 {
                break;
            }
        }
        if samples.is_empty() {
            println!("{}/{id}: no samples (empty iter body?)", self.name);
            return self;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let fmt = |s: f64| {
            if s >= 1.0 {
                format!("{s:.4} s")
            } else if s >= 1e-3 {
                format!("{:.4} ms", s * 1e3)
            } else if s >= 1e-6 {
                format!("{:.4} µs", s * 1e6)
            } else {
                format!("{:.4} ns", s * 1e9)
            }
        };
        let mut line = format!(
            "{}/{id}: time: [{} {} {}]",
            self.name,
            fmt(min),
            fmt(mean),
            fmt(max)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if mean > 0.0 {
                line.push_str(&format!(" thrpt: {:.0} {unit}", count as f64 / mean));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to the closure of `bench_function`; times the measured routine.
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.sample += start.elapsed();
        self.iters += 1;
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
