//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in environments with no crates.io access, so the real
//! serde cannot be fetched.  Nothing in the workspace actually serialises
//! values yet — the `#[derive(Serialize, Deserialize)]` annotations only
//! declare intent — so these derives parse the item and emit marker-trait
//! impls that satisfy `T: Serialize` / `T: Deserialize<'de>` bounds without
//! generating any runtime code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(name, generics_params, where_unusable)` from a struct/enum item.
/// Returns the type name and the raw generic parameter list (without bounds
/// stripped — we re-emit it verbatim for the impl).
fn type_name_and_generics(input: &TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.clone().into_iter().peekable();
    // Skip attributes and visibility until `struct` / `enum`.
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return None,
                };
                // Collect simple generic parameter idents from `<...>` if present.
                let mut params = Vec::new();
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        iter.next();
                        let mut depth = 1usize;
                        let mut expect_param = true;
                        while let Some(tt) = iter.next() {
                            match tt {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                    expect_param = true;
                                }
                                TokenTree::Punct(p)
                                    if p.as_char() == '\'' && depth == 1
                                    // Lifetime parameter: consume its ident.
                                    && expect_param =>
                                {
                                    if let Some(TokenTree::Ident(l)) = iter.next() {
                                        params.push(format!("'{l}"));
                                    }
                                    expect_param = false;
                                }
                                TokenTree::Ident(id) if depth == 1 && expect_param => {
                                    params.push(id.to_string());
                                    expect_param = false;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                return Some((name, params));
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        iter.next();
                    }
                }
            }
            _ => {}
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let Some((name, params)) = type_name_and_generics(&input) else {
        return TokenStream::new();
    };
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(params.iter().cloned());
    let generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_args = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let trait_args = extra_lifetime
        .map(|lt| format!("<{lt}>"))
        .unwrap_or_default();
    // Marker impls have no members, so no per-parameter bounds are needed.
    let code = format!(
        "#[automatically_derived] impl{generics} {trait_path}{trait_args} for {name}{ty_args} \
         where {name}{ty_args}: Sized {{}}"
    );
    code.parse().unwrap_or_default()
}

/// Stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", None)
}

/// Stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize", Some("'de"))
}
