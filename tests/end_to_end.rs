//! Cross-crate integration tests: the full MeRLiN pipeline (ISA → CPU →
//! workloads → ACE-like analysis → fault injection → grouping →
//! extrapolation) exercised through the umbrella crate's public API — the
//! session-oriented campaign API throughout.

use merlin_repro::cpu::{CheckpointPolicy, CpuConfig, Structure};
use merlin_repro::inject::FaultEffect;
use merlin_repro::merlin::{homogeneity, reduce_fault_list, relyzer_reduce};
use merlin_repro::workloads::workload_by_name;
use merlin_repro::{Session, SessionAce, SessionMethodology};
use std::collections::HashMap;

fn session_for(name: &str, cfg: &CpuConfig) -> Session {
    let w = workload_by_name(name).unwrap();
    Session::builder(&w.program, cfg)
        .max_cycles(100_000_000)
        .threads(4)
        .build()
        .unwrap()
}

#[test]
fn merlin_is_accurate_and_cheap_across_structures() {
    let cfg = CpuConfig::default()
        .with_phys_regs(64)
        .with_store_queue(16)
        .with_l1d_kb(16);
    let session = session_for("stringsearch", &cfg);
    for &structure in Structure::all() {
        let faults = session.fault_list(structure, 300, 11).unwrap();
        let merlin = session.merlin_with_faults(structure, &faults).unwrap();
        let baseline = session.comprehensive(&faults).unwrap();
        let inaccuracy = merlin
            .report
            .classification
            .max_inaccuracy(&baseline.classification);
        assert!(
            inaccuracy <= 8.0,
            "{structure}: inaccuracy {inaccuracy:.2} too large\n merlin   {}\n baseline {}",
            merlin.report.classification,
            baseline.classification
        );
        assert!(
            merlin.report.injections < faults.len(),
            "{structure}: no reduction achieved"
        );
        assert_eq!(merlin.report.classification.total() as usize, faults.len());
        // AVF agreement within a few points.
        assert!((merlin.report.avf() - baseline.classification.avf()).abs() < 0.08);
    }
    // Six campaign phases (MeRLiN + comprehensive, three structures), one
    // golden simulation and one ACE profile.
    assert_eq!(session.golden_builds(), 1);
}

#[test]
fn groups_are_homogeneous_on_a_real_workload() {
    let session = session_for("sha", &CpuConfig::default().with_phys_regs(128));
    let ace = session.ace_profile().unwrap();
    let faults = session.fault_list(Structure::RegisterFile, 400, 3).unwrap();
    let reduction = reduce_fault_list(&faults, ace.structure(Structure::RegisterFile));
    let post_ace = session.post_ace_baseline(&reduction).unwrap();
    let effects: HashMap<_, _> = post_ace
        .outcomes
        .iter()
        .map(|o| (o.fault, o.effect))
        .collect();
    let h = homogeneity(&reduction, &effects);
    assert!(
        h.fine_grained > 0.85,
        "fine-grained homogeneity {:.3} below the paper's ~0.9 band",
        h.fine_grained
    );
    assert!(h.coarse >= h.fine_grained - 1e-12);
    assert!(h.perfect_group_fraction > 0.7);
}

#[test]
fn relyzer_heuristic_produces_fewer_but_coarser_groups() {
    let session = session_for("qsort", &CpuConfig::default().with_phys_regs(128));
    let ace = session.ace_profile().unwrap();
    let faults = session
        .fault_list(Structure::RegisterFile, 500, 17)
        .unwrap();
    let merlin = reduce_fault_list(&faults, ace.structure(Structure::RegisterFile));
    let relyzer = relyzer_reduce(&faults, ace.structure(Structure::RegisterFile));
    // Both prune the identical ACE-masked set.
    assert_eq!(merlin.ace_masked.len(), relyzer.ace_masked.len());
    // Both reduce the list substantially.
    assert!(merlin.injections() * 5 < faults.len());
    assert!(relyzer.injections() * 5 < faults.len());
    // And the Relyzer campaign accounts for every fault.
    let (classification, injections) = session.relyzer(&relyzer).unwrap();
    assert_eq!(classification.total() as usize, faults.len());
    assert_eq!(injections, relyzer.injections());
}

#[test]
fn checkpointed_campaigns_match_from_scratch_byte_for_byte() {
    // The acceptance bar of the checkpoint-and-restore engine: on real
    // workloads, restoring a mid-run snapshot and simulating only the
    // post-injection suffix classifies every fault exactly as a from-cycle-0
    // simulation does.
    for (name, structure) in [
        ("stringsearch", Structure::RegisterFile),
        ("sha", Structure::StoreQueue),
        ("qsort", Structure::L1DCache),
    ] {
        let cfg = CpuConfig::default().with_phys_regs(64).with_store_queue(16);
        let session = session_for(name, &cfg);
        session.golden().unwrap();
        let store_len = session.golden_checkpoints().unwrap().store.len();
        assert!(
            store_len >= 8,
            "{name}: expected ≥ 8 checkpoints, got {store_len}"
        );
        let faults = session.fault_list(structure, 200, 41).unwrap();
        let checkpointed = session.campaign(&faults).unwrap();
        let scratch = session.campaign_from_scratch(&faults).unwrap();
        assert_eq!(
            checkpointed.outcomes, scratch.outcomes,
            "{name}/{structure}: engine diverged from the from-scratch path"
        );
        assert_eq!(checkpointed.classification, scratch.classification);
        // The restore-aware scheduler actually scheduled: faults bucketed
        // into checkpoint ranges, every in-range fault restored, and the
        // simulated suffix work far below the from-scratch total.
        assert!(checkpointed.schedule.ranges > 1);
        assert!(checkpointed.schedule.restores > 0);
        assert_eq!(scratch.schedule.restores, 0);
        assert!(
            checkpointed.schedule.suffix_cycles < scratch.schedule.suffix_cycles,
            "{name}/{structure}: restoring did not cut simulated cycles"
        );
    }
}

#[test]
fn masked_dominates_for_large_structures_and_every_class_is_reachable() {
    // Aggregate a few hundred faults across workloads/structures and check
    // the overall shape: Masked dominates, SDC and Crash both occur.
    let mut totals = merlin_repro::inject::Classification::default();
    for (name, structure) in [
        ("qsort", Structure::RegisterFile),
        ("caes", Structure::StoreQueue),
        ("susan_s", Structure::L1DCache),
    ] {
        let session = session_for(name, &CpuConfig::default());
        let faults = session.fault_list(structure, 250, 23).unwrap();
        let merlin = session.merlin_with_faults(structure, &faults).unwrap();
        totals += merlin.report.classification;
    }
    assert!(totals.percentage(FaultEffect::Masked) > 60.0);
    assert!(totals.sdc > 0, "no SDCs at all is implausible");
    assert_eq!(totals.total(), 750);
}

/// The API-redesign invariant: one session runs representative injection,
/// the comprehensive baseline and the post-ACE baseline while simulating its
/// golden run exactly once.  (Byte-identity against the pre-redesign
/// free-function path is proven in `crates/core/tests/session_regression.rs`,
/// next to the deprecated shims themselves.)
#[test]
fn session_builds_golden_once_across_all_phases() {
    let w = workload_by_name("stringsearch").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(64).with_store_queue(16);
    let structure = Structure::RegisterFile;

    let session = Session::builder(&w.program, &cfg)
        .checkpoints(CheckpointPolicy::default())
        .max_cycles(100_000_000)
        .threads(4)
        .build()
        .unwrap();
    let faults = session.fault_list(structure, 300, 11).unwrap();
    let merlin = session.merlin_with_faults(structure, &faults).unwrap();
    let comprehensive = session.comprehensive(&faults).unwrap();
    let post_ace = session.post_ace_baseline(&merlin.reduction).unwrap();

    // The golden run was simulated exactly once across all three phases.
    assert_eq!(session.golden_builds(), 1);
    assert_eq!(comprehensive.classification.total() as usize, faults.len());
    assert_eq!(
        post_ace.classification.total() as usize,
        merlin.report.post_ace_faults
    );
}
