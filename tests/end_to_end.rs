//! Cross-crate integration tests: the full MeRLiN pipeline (ISA → CPU →
//! workloads → ACE-like analysis → fault injection → grouping →
//! extrapolation) exercised through the umbrella crate's public API.

use merlin_repro::ace::AceAnalysis;
use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::inject::{
    run_campaign, run_campaign_from_scratch, run_golden_checkpointed, CheckpointPolicy, FaultEffect,
};
use merlin_repro::merlin::{
    homogeneity, initial_fault_list, reduce_fault_list, relyzer_reduce, run_comprehensive,
    run_merlin_with_faults, run_post_ace_baseline, MerlinConfig,
};
use merlin_repro::workloads::workload_by_name;
use std::collections::HashMap;

fn merlin_cfg() -> MerlinConfig {
    MerlinConfig {
        threads: 4,
        max_cycles: 100_000_000,
        seed: 31,
        ..Default::default()
    }
}

#[test]
fn merlin_is_accurate_and_cheap_across_structures() {
    let w = workload_by_name("stringsearch").unwrap();
    let cfg = CpuConfig::default()
        .with_phys_regs(64)
        .with_store_queue(16)
        .with_l1d_kb(16);
    let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
    let golden =
        run_golden_checkpointed(&w.program, &cfg, 100_000_000, &CheckpointPolicy::default())
            .unwrap();
    for &structure in Structure::all() {
        let faults = initial_fault_list(&cfg, structure, golden.result.cycles, 300, 11);
        let merlin = run_merlin_with_faults(
            &w.program,
            &cfg,
            structure,
            &ace,
            &faults,
            &golden,
            &merlin_cfg(),
        )
        .unwrap();
        let baseline = run_comprehensive(&w.program, &cfg, &golden, &faults, 4);
        let inaccuracy = merlin
            .report
            .classification
            .max_inaccuracy(&baseline.classification);
        assert!(
            inaccuracy <= 8.0,
            "{structure}: inaccuracy {inaccuracy:.2} too large\n merlin   {}\n baseline {}",
            merlin.report.classification,
            baseline.classification
        );
        assert!(
            merlin.report.injections < faults.len(),
            "{structure}: no reduction achieved"
        );
        assert_eq!(merlin.report.classification.total() as usize, faults.len());
        // AVF agreement within a few points.
        assert!((merlin.report.avf() - baseline.classification.avf()).abs() < 0.08);
    }
}

#[test]
fn groups_are_homogeneous_on_a_real_workload() {
    let w = workload_by_name("sha").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(128);
    let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
    let golden =
        run_golden_checkpointed(&w.program, &cfg, 100_000_000, &CheckpointPolicy::default())
            .unwrap();
    let faults = initial_fault_list(&cfg, Structure::RegisterFile, golden.result.cycles, 400, 3);
    let reduction = reduce_fault_list(&faults, ace.structure(Structure::RegisterFile));
    let post_ace = run_post_ace_baseline(&w.program, &cfg, &golden, &reduction, 4);
    let effects: HashMap<_, _> = post_ace
        .outcomes
        .iter()
        .map(|o| (o.fault, o.effect))
        .collect();
    let h = homogeneity(&reduction, &effects);
    assert!(
        h.fine_grained > 0.85,
        "fine-grained homogeneity {:.3} below the paper's ~0.9 band",
        h.fine_grained
    );
    assert!(h.coarse >= h.fine_grained - 1e-12);
    assert!(h.perfect_group_fraction > 0.7);
}

#[test]
fn relyzer_heuristic_produces_fewer_but_coarser_groups() {
    let w = workload_by_name("qsort").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(128);
    let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
    let golden =
        run_golden_checkpointed(&w.program, &cfg, 100_000_000, &CheckpointPolicy::default())
            .unwrap();
    let faults = initial_fault_list(&cfg, Structure::RegisterFile, golden.result.cycles, 500, 17);
    let merlin = reduce_fault_list(&faults, ace.structure(Structure::RegisterFile));
    let relyzer = relyzer_reduce(&faults, ace.structure(Structure::RegisterFile));
    // Both prune the identical ACE-masked set.
    assert_eq!(merlin.ace_masked.len(), relyzer.ace_masked.len());
    // Both reduce the list substantially.
    assert!(merlin.injections() * 5 < faults.len());
    assert!(relyzer.injections() * 5 < faults.len());
    let _ = golden;
}

#[test]
fn checkpointed_campaigns_match_from_scratch_byte_for_byte() {
    // The acceptance bar of the checkpoint-and-restore engine: on real
    // workloads, restoring a mid-run snapshot and simulating only the
    // post-injection suffix classifies every fault exactly as a from-cycle-0
    // simulation does.
    for (name, structure) in [
        ("stringsearch", Structure::RegisterFile),
        ("sha", Structure::StoreQueue),
        ("qsort", Structure::L1DCache),
    ] {
        let w = workload_by_name(name).unwrap();
        let cfg = CpuConfig::default().with_phys_regs(64).with_store_queue(16);
        let golden =
            run_golden_checkpointed(&w.program, &cfg, 100_000_000, &CheckpointPolicy::default())
                .unwrap();
        let store = &golden.checkpoints.as_ref().unwrap().store;
        assert!(
            store.len() >= 8,
            "{name}: expected ≥ 8 checkpoints, got {}",
            store.len()
        );
        let faults = initial_fault_list(&cfg, structure, golden.result.cycles, 200, 41);
        let checkpointed = run_campaign(&w.program, &cfg, &golden, &faults, 4);
        let scratch = run_campaign_from_scratch(&w.program, &cfg, &golden, &faults, 4);
        assert_eq!(
            checkpointed.outcomes, scratch.outcomes,
            "{name}/{structure}: engine diverged from the from-scratch path"
        );
        assert_eq!(checkpointed.classification, scratch.classification);
    }
}

#[test]
fn masked_dominates_for_large_structures_and_every_class_is_reachable() {
    // Aggregate a few hundred faults across workloads/structures and check
    // the overall shape: Masked dominates, SDC and Crash both occur.
    let mut totals = merlin_repro::inject::Classification::default();
    for (name, structure) in [
        ("qsort", Structure::RegisterFile),
        ("caes", Structure::StoreQueue),
        ("susan_s", Structure::L1DCache),
    ] {
        let w = workload_by_name(name).unwrap();
        let cfg = CpuConfig::default();
        let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
        let golden =
            run_golden_checkpointed(&w.program, &cfg, 100_000_000, &CheckpointPolicy::default())
                .unwrap();
        let faults = initial_fault_list(&cfg, structure, golden.result.cycles, 250, 23);
        let merlin = run_merlin_with_faults(
            &w.program,
            &cfg,
            structure,
            &ace,
            &faults,
            &golden,
            &merlin_cfg(),
        )
        .unwrap();
        totals += merlin.report.classification;
    }
    assert!(totals.percentage(FaultEffect::Masked) > 60.0);
    assert!(totals.sdc > 0, "no SDCs at all is implausible");
    assert_eq!(totals.total(), 750);
}
