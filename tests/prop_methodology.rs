//! Property-based tests of the methodology-level invariants, driven by
//! synthetic vulnerable-interval repositories and fault lists (no simulation
//! involved, so thousands of cases stay fast).

use merlin_repro::ace::{Interval, VulnerableIntervals};
use merlin_repro::cpu::{FaultSpec, Structure};
use merlin_repro::inject::{sample_size, Classification, FaultEffect};
use merlin_repro::merlin::{reduce_fault_list, relyzer_reduce, AvfMoments, GroupStat};
use proptest::prelude::*;

fn arb_structure() -> impl Strategy<Value = Structure> {
    prop::sample::select(Structure::all().to_vec())
}

/// Builds a synthetic interval repository with non-overlapping intervals per
/// entry.
fn arb_repository() -> impl Strategy<Value = (Structure, VulnerableIntervals)> {
    (
        arb_structure(),
        prop::collection::vec(
            (
                0usize..16, // entry
                1u64..500,  // start
                1u64..120,  // length
                0u32..12,   // rip
                0u8..3,     // upc
                0u64..20,   // dyn instance
                0u64..4,    // path signature
            ),
            0..60,
        ),
    )
        .prop_map(|(structure, raw)| {
            let mut repo = VulnerableIntervals::new(structure, 16, 2_000);
            let mut per_entry: std::collections::HashMap<usize, u64> = Default::default();
            for (entry, start, len, rip, upc, dyn_instance, path_sig) in raw {
                // Keep intervals of one entry disjoint and ordered by pushing
                // them after the previous end.
                let base = per_entry.entry(entry).or_insert(0);
                let s = *base + start;
                let e = s + len;
                repo.push(
                    entry,
                    Interval {
                        start: s,
                        end: e,
                        rip,
                        upc,
                        dyn_instance,
                        path_sig,
                    },
                );
                *base = e;
            }
            (structure, repo)
        })
}

fn arb_faults(structure: Structure) -> impl Strategy<Value = Vec<FaultSpec>> {
    prop::collection::vec((0usize..16, 0u8..64, 1u64..2_000), 1..400).prop_map(move |raw| {
        raw.into_iter()
            .map(|(entry, bit, cycle)| FaultSpec::new(structure, entry, bit, cycle))
            .collect()
    })
}

/// A repository plus a fault list drawn for the same structure.
fn arb_repo_and_faults() -> impl Strategy<Value = (VulnerableIntervals, Vec<FaultSpec>)> {
    arb_repository().prop_flat_map(|(structure, repo)| (Just(repo), arb_faults(structure)))
}

proptest! {
    /// The reduction is a partition: every initial fault is either pruned or
    /// in exactly one sub-group, representatives come from their own
    /// sub-group, pruned faults really lie outside every interval and
    /// grouped faults inside one, and the speedups are consistent.
    #[test]
    fn reduction_is_a_sound_partition((repo, faults) in arb_repo_and_faults()) {
        let red = reduce_fault_list(&faults, &repo);
        prop_assert_eq!(red.initial_faults(), faults.len());
        prop_assert_eq!(red.post_ace_faults() + red.ace_masked.len(), faults.len());
        prop_assert!(red.injections() <= red.post_ace_faults());
        for f in &red.ace_masked {
            prop_assert!(repo.lookup(f.entry, f.cycle).is_none());
        }
        for g in &red.groups {
            for s in &g.subgroups {
                prop_assert!(s.faults.iter().any(|f| f.fault == s.representative));
                for f in &s.faults {
                    prop_assert_eq!(f.fault.byte(), s.byte);
                    let iv = repo.lookup(f.fault.entry, f.fault.cycle).unwrap();
                    prop_assert_eq!((iv.rip, iv.upc), (g.key.rip, g.key.upc));
                }
            }
        }
        prop_assert!(red.total_speedup() + 1e-12 >= red.ace_speedup());
        // The Relyzer reduction prunes exactly the same ACE-masked set.
        let rel = relyzer_reduce(&faults, &repo);
        prop_assert_eq!(rel.ace_masked.len(), red.ace_masked.len());
        prop_assert!(rel.injections() <= red.post_ace_faults());
    }

    /// Extrapolation preserves totals regardless of what effects the
    /// representatives produce: distributing any effect over each sub-group
    /// keeps the histogram total equal to the initial list size.
    #[test]
    fn extrapolation_preserves_totals((repo, faults) in arb_repo_and_faults(),
                                      effect_pick in prop::collection::vec(0usize..6, 1..50)) {
        let red = reduce_fault_list(&faults, &repo);
        let mut classification = Classification::default();
        classification.record(FaultEffect::Masked, red.ace_masked.len() as u64);
        let all_effects = FaultEffect::all();
        let mut i = 0usize;
        for g in &red.groups {
            for s in &g.subgroups {
                let e = all_effects[effect_pick[i % effect_pick.len()] % all_effects.len()];
                classification.record(e, s.len() as u64);
                i += 1;
            }
        }
        prop_assert_eq!(classification.total() as usize, faults.len());
        prop_assert!(classification.avf() >= 0.0 && classification.avf() <= 1.0);
    }

    /// §4.4.5 invariants on arbitrary group populations: identical means,
    /// MeRLiN variance at least the comprehensive variance but bounded by
    /// the largest group size.
    #[test]
    fn estimator_moments_behave(groups in prop::collection::vec((1u64..200, 0.0f64..=1.0), 1..200),
                                pruned in 0u64..10_000) {
        let stats: Vec<GroupStat> = groups.iter().map(|&(size, p)| GroupStat { size, p }).collect();
        let m = AvfMoments::from_groups(&stats, pruned);
        prop_assert!(m.mean >= 0.0 && m.mean <= 1.0);
        prop_assert!(m.variance_merlin + 1e-15 >= m.variance_comprehensive);
        let max_size = groups.iter().map(|g| g.0).max().unwrap() as f64;
        prop_assert!(m.variance_merlin <= m.variance_comprehensive * max_size + 1e-12);
    }

    /// The Leveugle sample size is monotone in the error margin and never
    /// exceeds the population.
    #[test]
    fn sample_size_bounds(population in 1u64..10_000_000_000, margin_bp in 10u64..500) {
        let margin = margin_bp as f64 / 10_000.0;
        let n = sample_size(population, 0.998, margin);
        prop_assert!(n <= population);
        prop_assert!(n >= 1);
        let looser = sample_size(population, 0.998, margin * 2.0);
        prop_assert!(looser <= n);
    }
}
